package tuple

import "math/bits"

// Columnar batch layout. A ColBatch holds one run of same-schema tuples as
// per-column typed vectors — []int64 for int columns, []float64 for float
// columns, []uint32 interned-string ids for string columns — plus TS/Exp/Neg
// control columns. Operator kernels that understand the layout scan whole
// columns of machine words instead of walking []Value rows, and conversion
// back to row form happens only at the boundaries that need it (state
// insertion, the result view).
//
// A batch is bound to one schema and one Interner: every string id stored in
// its vectors is meaningful only against the interner that produced it, so
// batches never travel between engines. Conversion is strict about kinds —
// a value whose Kind differs from its column's declared Kind (including
// NULL) cannot be laid out in a typed vector, and the conversion reports
// failure so the caller can fall back to the row batch path. Columnar
// batches therefore never contain NULLs and need no validity bitmaps.

// ColVec is one column's typed vector. Exactly one of the payload slices is
// live, selected by Kind.
type ColVec struct {
	Kind  Kind
	Int   []int64
	Float []float64
	ID    []uint32 // interned string ids
}

// value materializes the i-th entry as a Value.
func (v *ColVec) value(i int, in *Interner) Value {
	switch v.Kind {
	case KindInt:
		return Value{Kind: KindInt, I: v.Int[i]}
	case KindFloat:
		return Value{Kind: KindFloat, F: v.Float[i]}
	default:
		return Value{Kind: KindString, S: in.Str(v.ID[i])}
	}
}

// append lays out val, whose Kind must already equal v.Kind.
func (v *ColVec) append(val Value, in *Interner) {
	switch v.Kind {
	case KindInt:
		v.Int = append(v.Int, val.I)
	case KindFloat:
		v.Float = append(v.Float, val.F)
	default:
		v.ID = append(v.ID, in.Intern(val.S))
	}
}

// appendFrom copies entry i of src (same Kind, same interner) onto the tail.
func (v *ColVec) appendFrom(src *ColVec, i int) {
	switch v.Kind {
	case KindInt:
		v.Int = append(v.Int, src.Int[i])
	case KindFloat:
		v.Float = append(v.Float, src.Float[i])
	default:
		v.ID = append(v.ID, src.ID[i])
	}
}

// reset empties the vector, keeping capacity. Only the live payload slice
// needs truncating — the other two are never written for this Kind — and
// batches reset once per kernel invocation, so the saved header writes count.
func (v *ColVec) reset() {
	switch v.Kind {
	case KindInt:
		v.Int = v.Int[:0]
	case KindFloat:
		v.Float = v.Float[:0]
	default:
		v.ID = v.ID[:0]
	}
}

// ColBatch is a run of tuples in columnar form. The zero value is not usable;
// build with NewColBatch.
type ColBatch struct {
	schema *Schema
	kinds  []Kind
	n      int
	// negs counts negative rows, maintained by every append so per-batch
	// polarity accounting reads a field instead of scanning the Neg column.
	negs int
	ts   []int64
	exp  []int64
	neg  []bool
	cols []ColVec
	// maskIdx backs AppendMasked's survivor index gather.
	maskIdx []int32
	// keyVals/keyIdx back the wide-key slow path of Key.
	keyVals []Value
	keyIdx  []int
}

// NewColBatch returns an empty batch laid out for schema. Every column kind
// must be a concrete scalar (int, float, or string); a schema with a NULL
// column kind yields a batch whose conversions always fail, which callers
// should rule out up front with ColumnarKinds.
func NewColBatch(schema *Schema) *ColBatch {
	cb := &ColBatch{schema: schema, kinds: make([]Kind, schema.Len()), cols: make([]ColVec, schema.Len())}
	for i := 0; i < schema.Len(); i++ {
		cb.kinds[i] = schema.Col(i).Kind
		cb.cols[i].Kind = cb.kinds[i]
	}
	return cb
}

// ColumnarKinds reports whether every column of schema has a concrete scalar
// kind representable as a typed vector.
func ColumnarKinds(schema *Schema) bool {
	for i := 0; i < schema.Len(); i++ {
		switch schema.Col(i).Kind {
		case KindInt, KindFloat, KindString:
		default:
			return false
		}
	}
	return true
}

// Schema returns the batch's schema.
func (cb *ColBatch) Schema() *Schema { return cb.schema }

// Len returns the number of rows.
func (cb *ColBatch) Len() int { return cb.n }

// Width returns the number of columns.
func (cb *ColBatch) Width() int { return len(cb.kinds) }

// Col returns column c's vector.
func (cb *ColBatch) Col(c int) *ColVec { return &cb.cols[c] }

// TSAt returns row i's generation timestamp.
func (cb *ColBatch) TSAt(i int) int64 { return cb.ts[i] }

// ExpAt returns row i's expiration timestamp.
func (cb *ColBatch) ExpAt(i int) int64 { return cb.exp[i] }

// NegAt reports whether row i is a negative (retraction) tuple.
func (cb *ColBatch) NegAt(i int) bool { return cb.neg[i] }

// NegCount returns the number of negative rows. It is tracked incrementally
// by every append, so polarity accounting over a batch is O(1).
func (cb *ColBatch) NegCount() int { return cb.negs }

// ValueAt materializes the value at (row, col).
func (cb *ColBatch) ValueAt(row, col int, in *Interner) Value {
	return cb.cols[col].value(row, in)
}

// Reset empties the batch, keeping vector capacity.
func (cb *ColBatch) Reset() {
	cb.n = 0
	cb.negs = 0
	cb.ts = cb.ts[:0]
	cb.exp = cb.exp[:0]
	cb.neg = cb.neg[:0]
	for i := range cb.cols {
		cb.cols[i].reset()
	}
}

// AppendVals appends one row. It reports false — leaving the batch unchanged
// — when the value list's width or kinds disagree with the schema; the
// caller then routes the whole run through the row batch path.
func (cb *ColBatch) AppendVals(ts, exp int64, neg bool, vals []Value, in *Interner) bool {
	if len(vals) != len(cb.kinds) {
		return false
	}
	for i := range vals {
		if vals[i].Kind != cb.kinds[i] {
			return false
		}
	}
	for i := range vals {
		cb.cols[i].append(vals[i], in)
	}
	cb.ts = append(cb.ts, ts)
	cb.exp = append(cb.exp, exp)
	cb.neg = append(cb.neg, neg)
	if neg {
		cb.negs++
	}
	cb.n++
	return true
}

// AppendRun lays out a whole ingest run — positive rows sharing one
// generation timestamp and one expiration — column-major. The batch MUST be
// empty (the run replaces any prior contents). Kinds are checked as each
// column fills; a mismatch anywhere in the run resets the batch and reports
// false, so the caller reroutes the run through the row path whole
// (all-or-nothing, like FromRows). Filling vector by vector turns the
// per-value Kind dispatch of AppendVals into one switch per column, and
// sizing each vector up front replaces per-element append capacity checks
// with plain index stores.
func (cb *ColBatch) AppendRun(ts, exp int64, rows [][]Value, in *Interner) bool {
	w := len(cb.kinds)
	n := len(rows)
	for _, r := range rows {
		if len(r) != w {
			cb.Reset()
			return false
		}
	}
	for c := 0; c < w; c++ {
		v := &cb.cols[c]
		k := cb.kinds[c]
		// The run lands on an empty batch, so each vector is sized up front
		// and filled by index — no per-element capacity check.
		switch v.Kind {
		case KindInt:
			if cap(v.Int) < n {
				v.Int = make([]int64, n)
			} else {
				v.Int = v.Int[:n]
			}
			for ri, r := range rows {
				if r[c].Kind != k {
					cb.Reset()
					return false
				}
				v.Int[ri] = r[c].I
			}
		case KindFloat:
			if cap(v.Float) < n {
				v.Float = make([]float64, n)
			} else {
				v.Float = v.Float[:n]
			}
			for ri, r := range rows {
				if r[c].Kind != k {
					cb.Reset()
					return false
				}
				v.Float[ri] = r[c].F
			}
		default:
			if cap(v.ID) < n {
				v.ID = make([]uint32, n)
			} else {
				v.ID = v.ID[:n]
			}
			for ri, r := range rows {
				if r[c].Kind != k {
					cb.Reset()
					return false
				}
				v.ID[ri] = in.Intern(r[c].S)
			}
		}
	}
	if cap(cb.ts) < n {
		cb.ts = make([]int64, n)
	} else {
		cb.ts = cb.ts[:n]
	}
	if cap(cb.exp) < n {
		cb.exp = make([]int64, n)
	} else {
		cb.exp = cb.exp[:n]
	}
	if cap(cb.neg) < n {
		cb.neg = make([]bool, n)
	} else {
		cb.neg = cb.neg[:n]
	}
	for i := 0; i < n; i++ {
		cb.ts[i] = ts
		cb.exp[i] = exp
		cb.neg[i] = false
	}
	cb.n = n
	return true
}

// AppendRow appends one row-form tuple; same contract as AppendVals.
func (cb *ColBatch) AppendRow(t Tuple, in *Interner) bool {
	return cb.AppendVals(t.TS, t.Exp, t.Neg, t.Vals, in)
}

// FromRows resets the batch and lays out rows. On any kind mismatch the
// batch is reset and false is returned: conversion is all-or-nothing per
// run, so a mixed run falls back to row processing in one piece.
func (cb *ColBatch) FromRows(rows []Tuple, in *Interner) bool {
	cb.Reset()
	for i := range rows {
		if !cb.AppendRow(rows[i], in) {
			cb.Reset()
			return false
		}
	}
	return true
}

// StampExp sets every row's expiration to exp — the vectorized form of the
// window's per-tuple Exp stamping for a same-timestamp run.
func (cb *ColBatch) StampExp(exp int64) {
	for i := range cb.exp {
		cb.exp[i] = exp
	}
}

// AppendMasked appends the rows of src whose mask entry is true (all rows
// when mask is nil). The batches must have layout-equal schemas and share
// one interner. The mask is materialized into a survivor index list once, so
// each column gathers exactly the selected rows instead of re-testing the
// mask per column — under selective predicates that is the difference between
// O(columns × rows) branches and O(columns × survivors) copies.
func (cb *ColBatch) AppendMasked(src *ColBatch, mask []bool) {
	if mask == nil {
		for c := range cb.cols {
			dst, sv := &cb.cols[c], &src.cols[c]
			switch dst.Kind {
			case KindInt:
				dst.Int = append(dst.Int, sv.Int...)
			case KindFloat:
				dst.Float = append(dst.Float, sv.Float...)
			default:
				dst.ID = append(dst.ID, sv.ID...)
			}
		}
		cb.ts = append(cb.ts, src.ts...)
		cb.exp = append(cb.exp, src.exp...)
		cb.neg = append(cb.neg, src.neg...)
		cb.n += src.n
		cb.negs += src.negs
		return
	}
	idx := cb.maskIdx[:0]
	for i := 0; i < src.n; i++ {
		if mask[i] {
			idx = append(idx, int32(i))
		}
	}
	cb.maskIdx = idx
	cb.appendByIndex(src, idx)
}

// AppendMaskedBits appends the rows of src whose bit is set in the packed
// bitset mask: row i lives at bit i&63 of word i>>6. Bits at positions ≥
// src.Len() must be zero. The survivor indexes are recovered word-at-a-time
// with TrailingZeros64 — cost proportional to popcount, not row count — and
// then gathered column by column exactly like AppendMasked.
func (cb *ColBatch) AppendMaskedBits(src *ColBatch, mask []uint64) {
	idx := cb.maskIdx[:0]
	for w, word := range mask {
		base := int32(w) << 6
		for word != 0 {
			idx = append(idx, base+int32(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	cb.maskIdx = idx
	cb.appendByIndex(src, idx)
}

// appendByIndex gathers the src rows at idx onto the tail (the shared body of
// the masked appends).
func (cb *ColBatch) appendByIndex(src *ColBatch, idx []int32) {
	if len(idx) == 0 {
		return
	}
	for c := range cb.cols {
		dst, sv := &cb.cols[c], &src.cols[c]
		switch dst.Kind {
		case KindInt:
			for _, i := range idx {
				dst.Int = append(dst.Int, sv.Int[i])
			}
		case KindFloat:
			for _, i := range idx {
				dst.Float = append(dst.Float, sv.Float[i])
			}
		default:
			for _, i := range idx {
				dst.ID = append(dst.ID, sv.ID[i])
			}
		}
	}
	for _, i := range idx {
		cb.ts = append(cb.ts, src.ts[i])
		cb.exp = append(cb.exp, src.exp[i])
		neg := src.neg[i]
		cb.neg = append(cb.neg, neg)
		if neg {
			cb.negs++
		}
	}
	cb.n += len(idx)
}

// AppendProjection appends every row of src keeping only the columns at the
// given positions, in that order (the columnar form of projection). The
// batch's column kinds must equal src's kinds at those positions.
func (cb *ColBatch) AppendProjection(src *ColBatch, cols []int) {
	for j, c := range cols {
		dst, sv := &cb.cols[j], &src.cols[c]
		switch dst.Kind {
		case KindInt:
			dst.Int = append(dst.Int, sv.Int...)
		case KindFloat:
			dst.Float = append(dst.Float, sv.Float...)
		default:
			dst.ID = append(dst.ID, sv.ID...)
		}
	}
	cb.ts = append(cb.ts, src.ts...)
	cb.exp = append(cb.exp, src.exp...)
	cb.neg = append(cb.neg, src.neg...)
	cb.n += src.n
	cb.negs += src.negs
}

// AppendJoin appends one join result row: the values of src row `row` on
// input side `side` concatenated (left then right) with the stored opposite-
// side values `other`. It reports false — leaving the batch unchanged — when
// other's kinds disagree with the batch's layout, which means row-path state
// holds tuples outside the declared schema kinds. Both batches and the
// stored values must share one interner.
func (cb *ColBatch) AppendJoin(src *ColBatch, row, side int, other []Value, ts, exp int64, neg bool, in *Interner) bool {
	off := 0
	if side == 0 {
		off = src.Width()
	}
	if off+len(other) > len(cb.kinds) {
		return false
	}
	for i := range other {
		if other[i].Kind != cb.kinds[off+i] {
			return false
		}
	}
	if side == 0 {
		for j := 0; j < src.Width(); j++ {
			cb.cols[j].appendFrom(&src.cols[j], row)
		}
		for i := range other {
			cb.cols[off+i].append(other[i], in)
		}
	} else {
		for i := range other {
			cb.cols[i].append(other[i], in)
		}
		for j := 0; j < src.Width(); j++ {
			cb.cols[len(other)+j].appendFrom(&src.cols[j], row)
		}
	}
	cb.ts = append(cb.ts, ts)
	cb.exp = append(cb.exp, exp)
	cb.neg = append(cb.neg, neg)
	if neg {
		cb.negs++
	}
	cb.n++
	return true
}

// RowTuple materializes row i in row form, carving the value slice from
// arena (or allocating when arena is nil).
func (cb *ColBatch) RowTuple(i int, arena *ValueArena, in *Interner) Tuple {
	var vals []Value
	if arena != nil {
		vals = arena.Alloc(len(cb.kinds))
	} else {
		vals = make([]Value, len(cb.kinds))
	}
	for c := range cb.cols {
		vals[c] = cb.cols[c].value(i, in)
	}
	return Tuple{TS: cb.ts[i], Exp: cb.exp[i], Neg: cb.neg[i], Vals: vals}
}

// AppendRowsTo materializes every row onto dst in row order.
func (cb *ColBatch) AppendRowsTo(dst []Tuple, arena *ValueArena, in *Interner) []Tuple {
	for i := 0; i < cb.n; i++ {
		dst = append(dst, cb.RowTuple(i, arena, in))
	}
	return dst
}

// Key extracts row i's composite key over cols with exactly the semantics of
// Tuple.Key — canonicalized values, allocation-free for up to three columns
// — so columnar probes address the same hash buckets row-path operations do.
func (cb *ColBatch) Key(row int, cols []int, in *Interner) Key {
	if len(cols) >= 1 && len(cols) <= 3 {
		var k Key
		k.n = len(cols)
		for i, c := range cols {
			k.v[i] = canonical(cb.cols[c].value(row, in))
		}
		return k
	}
	// Wide keys take the row-form rendering path; they are off the hot path
	// by construction (joins key on few columns).
	cb.keyVals = cb.keyVals[:0]
	cb.keyIdx = cb.keyIdx[:0]
	for i, c := range cols {
		cb.keyVals = append(cb.keyVals, cb.cols[c].value(row, in))
		cb.keyIdx = append(cb.keyIdx, i)
	}
	return Tuple{Vals: cb.keyVals}.Key(cb.keyIdx)
}
