package tuple

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "null",
		KindInt:    "int",
		KindFloat:  "float",
		KindString: "string",
		Kind(9):    "kind(9)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestValueConstructorsAndAccessors(t *testing.T) {
	if v := Int(42); v.Kind != KindInt || v.AsInt() != 42 || v.AsFloat() != 42 {
		t.Errorf("Int(42) = %+v", v)
	}
	if v := Float(2.5); v.Kind != KindFloat || v.AsFloat() != 2.5 || v.AsInt() != 2 {
		t.Errorf("Float(2.5) = %+v", v)
	}
	if v := String_("x"); v.Kind != KindString || v.S != "x" {
		t.Errorf("String_ = %+v", v)
	}
	if v := String_("x"); v.AsInt() != 0 || v.AsFloat() != 0 {
		t.Errorf("string numeric accessors should be 0")
	}
	if !Null.IsNull() || Int(0).IsNull() {
		t.Errorf("IsNull misbehaves")
	}
	if Bool(true) != Int(1) || Bool(false) != Int(0) {
		t.Errorf("Bool encoding wrong")
	}
}

func TestValueCompareTotalOrder(t *testing.T) {
	ordered := []Value{
		Null,
		Float(math.NaN()),
		Int(-5),
		Float(-4.5),
		Int(0),
		Float(0.5),
		Int(1),
		Int(7),
		Float(7.5),
		String_(""),
		String_("a"),
		String_("ab"),
		String_("b"),
	}
	for i, a := range ordered {
		for j, b := range ordered {
			got := a.Compare(b)
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v,%v) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestValueNumericCrossKindEquality(t *testing.T) {
	if !Int(3).Equal(Float(3.0)) {
		t.Errorf("Int(3) should equal Float(3)")
	}
	if Int(3).Hash64() != Float(3.0).Hash64() {
		t.Errorf("equal numeric values must hash equal")
	}
	if Int(3).Equal(Float(3.5)) {
		t.Errorf("Int(3) must not equal Float(3.5)")
	}
}

func TestValueNaN(t *testing.T) {
	nan := Float(math.NaN())
	if nan.Compare(nan) != 0 {
		t.Errorf("NaN must equal NaN under the total order")
	}
	if nan.Compare(Float(0)) != -1 || Float(0).Compare(nan) != 1 {
		t.Errorf("NaN must order below other floats")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{Int(-7), "-7"},
		{Float(1.25), "1.25"},
		{String_("hi"), "hi"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestParseValue(t *testing.T) {
	v, err := ParseValue(KindInt, "123")
	if err != nil || v != Int(123) {
		t.Errorf("ParseValue int: %v %v", v, err)
	}
	v, err = ParseValue(KindFloat, "1.5")
	if err != nil || v != Float(1.5) {
		t.Errorf("ParseValue float: %v %v", v, err)
	}
	v, err = ParseValue(KindString, "abc")
	if err != nil || v != String_("abc") {
		t.Errorf("ParseValue string: %v %v", v, err)
	}
	if _, err = ParseValue(KindInt, "xyz"); err == nil {
		t.Errorf("ParseValue should fail on bad int")
	}
	if v, err = ParseValue(KindNull, "anything"); err != nil || !v.IsNull() {
		t.Errorf("ParseValue null: %v %v", v, err)
	}
	if _, err = ParseValue(Kind(99), "x"); err == nil {
		t.Errorf("ParseValue should fail on unknown kind")
	}
}

// randomValue draws from all kinds, biased toward collisions so equality
// paths get exercised.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(4) {
	case 0:
		return Null
	case 1:
		return Int(int64(r.Intn(16) - 8))
	case 2:
		return Float(float64(r.Intn(16)-8) / 2)
	default:
		letters := []string{"", "a", "b", "ab", "xyz"}
		return String_(letters[r.Intn(len(letters))])
	}
}

func TestValueCompareProperties(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(randomValue(r))
			args[1] = reflect.ValueOf(randomValue(r))
			args[2] = reflect.ValueOf(randomValue(r))
		},
	}
	// Antisymmetry and hash consistency.
	prop := func(a, b, c Value) bool {
		if a.Compare(b) != -b.Compare(a) {
			return false
		}
		if a.Equal(b) && a.Hash64() != b.Hash64() {
			return false
		}
		// Transitivity of <=.
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestValueHashDistribution(t *testing.T) {
	// Sanity: distinct small ints should not all collide.
	seen := map[uint64]bool{}
	for i := int64(0); i < 64; i++ {
		seen[Int(i).Hash64()] = true
	}
	if len(seen) < 60 {
		t.Errorf("poor hash distribution: %d distinct hashes for 64 ints", len(seen))
	}
}
