package tuple

import (
	"strings"
	"testing"
)

func ipSchema() *Schema {
	return MustSchema(
		Column{"ts", KindInt},
		Column{"duration", KindFloat},
		Column{"protocol", KindString},
		Column{"payload", KindInt},
		Column{"src", KindInt},
		Column{"dst", KindInt},
	)
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema(Column{"a", KindInt}, Column{"a", KindInt}); err == nil {
		t.Error("duplicate column should fail")
	}
	if _, err := NewSchema(Column{"", KindInt}); err == nil {
		t.Error("empty name should fail")
	}
	s, err := NewSchema(Column{"a", KindInt}, Column{"b", KindString})
	if err != nil || s.Len() != 2 {
		t.Fatalf("NewSchema: %v %v", s, err)
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSchema should panic on duplicate names")
		}
	}()
	MustSchema(Column{"a", KindInt}, Column{"a", KindInt})
}

func TestSchemaIndex(t *testing.T) {
	s := ipSchema()
	if s.Index("src") != 4 || s.Index("nope") != -1 {
		t.Errorf("Index wrong: src=%d nope=%d", s.Index("src"), s.Index("nope"))
	}
	if s.MustIndex("dst") != 5 {
		t.Errorf("MustIndex(dst) = %d", s.MustIndex("dst"))
	}
	defer func() {
		if recover() == nil {
			t.Error("MustIndex should panic on missing column")
		}
	}()
	s.MustIndex("ghost")
}

func TestSchemaProject(t *testing.T) {
	s := ipSchema()
	p, err := s.Project([]int{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || p.Col(0).Name != "src" || p.Col(1).Name != "dst" {
		t.Errorf("Project = %v", p)
	}
	if _, err := s.Project([]int{99}); err == nil {
		t.Error("out-of-range projection should fail")
	}
}

func TestSchemaConcatRenamesCollisions(t *testing.T) {
	a := MustSchema(Column{"x", KindInt}, Column{"y", KindInt})
	b := MustSchema(Column{"x", KindInt}, Column{"z", KindInt})
	c := a.Concat(b)
	if c.Len() != 4 {
		t.Fatalf("Concat len = %d", c.Len())
	}
	names := []string{c.Col(0).Name, c.Col(1).Name, c.Col(2).Name, c.Col(3).Name}
	want := []string{"x", "y", "r_x", "z"}
	for i := range names {
		if names[i] != want[i] {
			t.Errorf("Concat names = %v, want %v", names, want)
			break
		}
	}
	// A second collision layer must also resolve.
	d := MustSchema(Column{"x", KindInt}, Column{"r_x", KindInt})
	e := d.Concat(MustSchema(Column{"x", KindInt}))
	if e.Col(2).Name == "x" || e.Col(2).Name == "r_x" {
		t.Errorf("double collision not resolved: %v", e)
	}
}

func TestSchemaEqualLayout(t *testing.T) {
	a := MustSchema(Column{"a", KindInt}, Column{"b", KindString})
	b := MustSchema(Column{"c", KindInt}, Column{"d", KindString})
	c := MustSchema(Column{"c", KindString}, Column{"d", KindInt})
	if !a.EqualLayout(b) {
		t.Error("same kinds, different names should be layout-equal")
	}
	if a.EqualLayout(c) {
		t.Error("different kinds should not be layout-equal")
	}
	if a.EqualLayout(MustSchema(Column{"a", KindInt})) {
		t.Error("different lengths should not be layout-equal")
	}
}

func TestSchemaString(t *testing.T) {
	s := MustSchema(Column{"a", KindInt}, Column{"b", KindString})
	str := s.String()
	if !strings.Contains(str, "a int") || !strings.Contains(str, "b string") {
		t.Errorf("String() = %q", str)
	}
}

func TestSchemaColumnsCopy(t *testing.T) {
	s := ipSchema()
	cols := s.Columns()
	cols[0].Name = "mutated"
	if s.Col(0).Name != "ts" {
		t.Error("Columns() must return a copy")
	}
}
