package tuple

import (
	"math"
	"math/rand"
	"testing"
)

func randSchema(rng *rand.Rand, width int) *Schema {
	kinds := []Kind{KindInt, KindFloat, KindString}
	cols := make([]Column, width)
	for i := range cols {
		cols[i] = Column{Name: string(rune('a' + i)), Kind: kinds[rng.Intn(len(kinds))]}
	}
	return MustSchema(cols...)
}

func randRow(rng *rand.Rand, schema *Schema, ts int64) Tuple {
	vals := make([]Value, schema.Len())
	for i := range vals {
		switch schema.Col(i).Kind {
		case KindInt:
			vals[i] = Int(rng.Int63n(1000) - 500)
		case KindFloat:
			vals[i] = Float(rng.Float64()*100 - 50)
		default:
			vals[i] = String_([]string{"ftp", "http", "smtp", "dns", ""}[rng.Intn(5)])
		}
	}
	exp := ts + rng.Int63n(100)
	if rng.Intn(8) == 0 {
		exp = NeverExpires
	}
	return Tuple{TS: ts, Exp: exp, Neg: rng.Intn(4) == 0, Vals: vals}
}

// TestColBatchRoundTripProperty is the satellite property test: for random
// schemas over all three scalar kinds, row → column → row conversion is
// lossless — including negative tuples, NeverExpires stamps, and zero-width
// batches — and every per-row accessor agrees with the source row.
func TestColBatchRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		width := rng.Intn(6) + 1
		schema := randSchema(rng, width)
		in := NewInterner()
		cb := NewColBatch(schema)
		n := rng.Intn(40) // zero-row batches included
		rows := make([]Tuple, n)
		ts := int64(rng.Intn(1000))
		for i := range rows {
			rows[i] = randRow(rng, schema, ts)
		}
		if !cb.FromRows(rows, in) {
			t.Fatalf("trial %d: conversion of kind-conforming rows failed", trial)
		}
		if cb.Len() != n || cb.Width() != width {
			t.Fatalf("trial %d: dims %dx%d, want %dx%d", trial, cb.Len(), cb.Width(), n, width)
		}
		var arena ValueArena
		back := cb.AppendRowsTo(nil, &arena, in)
		if len(back) != n {
			t.Fatalf("trial %d: %d rows back, want %d", trial, len(back), n)
		}
		for i := range rows {
			want, got := rows[i], back[i]
			if got.TS != want.TS || got.Exp != want.Exp || got.Neg != want.Neg || !got.SameVals(want) {
				t.Fatalf("trial %d row %d: round-trip %v != %v", trial, i, got, want)
			}
			if cb.TSAt(i) != want.TS || cb.ExpAt(i) != want.Exp || cb.NegAt(i) != want.Neg {
				t.Fatalf("trial %d row %d: accessor mismatch", trial, i)
			}
			for c := 0; c < width; c++ {
				if !cb.ValueAt(i, c, in).Equal(want.Vals[c]) {
					t.Fatalf("trial %d row %d col %d: %v != %v", trial, i, c, cb.ValueAt(i, c, in), want.Vals[c])
				}
			}
		}
	}
}

// TestColBatchRejectsKindMismatch checks the all-or-nothing contract: a run
// containing one off-kind value (NULL, or a value whose kind disagrees with
// the column) fails conversion as a whole and leaves the batch empty.
func TestColBatchRejectsKindMismatch(t *testing.T) {
	schema := MustSchema(Column{Name: "id", Kind: KindInt}, Column{Name: "proto", Kind: KindString})
	in := NewInterner()
	cb := NewColBatch(schema)
	bad := [][]Value{
		{Int(1), Null},                 // NULL in a typed column
		{Float(1.5), String_("ftp")},   // float in an int column
		{Int(1), Int(2)},               // int in a string column
		{Int(1)},                       // width mismatch
		{Int(1), String_("ftp"), Null}, // width mismatch
	}
	for i, vals := range bad {
		rows := []Tuple{
			{TS: 1, Exp: 10, Vals: []Value{Int(1), String_("ftp")}},
			{TS: 1, Exp: 10, Vals: vals},
		}
		if cb.FromRows(rows, in) {
			t.Fatalf("case %d: conversion of off-kind run succeeded", i)
		}
		if cb.Len() != 0 {
			t.Fatalf("case %d: failed conversion left %d rows", i, cb.Len())
		}
	}
	// The batch still works after rejections.
	if !cb.FromRows([]Tuple{{TS: 2, Exp: 20, Vals: []Value{Int(7), String_("dns")}}}, in) {
		t.Fatal("conversion after rejection failed")
	}
	if cb.Len() != 1 {
		t.Fatal("batch unusable after rejection")
	}
}

func TestColBatchStampExp(t *testing.T) {
	schema := MustSchema(Column{Name: "id", Kind: KindInt})
	in := NewInterner()
	cb := NewColBatch(schema)
	for i := int64(0); i < 5; i++ {
		if !cb.AppendVals(100, 0, false, []Value{Int(i)}, in) {
			t.Fatal("append failed")
		}
	}
	cb.StampExp(175)
	for i := 0; i < cb.Len(); i++ {
		if cb.ExpAt(i) != 175 {
			t.Fatalf("row %d Exp = %d, want 175", i, cb.ExpAt(i))
		}
	}
}

// TestColBatchKeyMatchesTupleKey checks columnar key extraction produces keys
// ==-equal (and hash-equal) to the row path's, for narrow and wide column
// sets, so columnar probes and row-path removals address the same buckets.
func TestColBatchKeyMatchesTupleKey(t *testing.T) {
	schema := MustSchema(
		Column{Name: "a", Kind: KindInt},
		Column{Name: "b", Kind: KindString},
		Column{Name: "c", Kind: KindFloat},
		Column{Name: "d", Kind: KindInt},
		Column{Name: "e", Kind: KindFloat},
	)
	in := NewInterner()
	cb := NewColBatch(schema)
	rows := []Tuple{
		{TS: 1, Exp: 9, Vals: []Value{Int(7), String_("ftp"), Float(2.5), Int(-3), Float(4)}},
		{TS: 1, Exp: 9, Vals: []Value{Int(0), String_(""), Float(7), Int(9), Float(-0.25)}},
	}
	if !cb.FromRows(rows, in) {
		t.Fatal("conversion failed")
	}
	for _, cols := range [][]int{{0}, {1}, {0, 2}, {1, 3, 4}, {0, 1, 2, 3}, {4, 3, 2, 1, 0}} {
		for i := range rows {
			want := rows[i].Key(cols)
			got := cb.Key(i, cols, in)
			if got != want {
				t.Errorf("cols %v row %d: columnar key %v != row key %v", cols, i, got, want)
			}
			if got.Hash64() != want.Hash64() {
				t.Errorf("cols %v row %d: hash mismatch", cols, i)
			}
		}
	}
	// Float 4.0 must canonicalize to Int 4 on both paths.
	if cb.Key(0, []int{4}, in) != (Tuple{Vals: []Value{Int(4)}}).Key([]int{0}) {
		t.Error("integral float did not canonicalize on the columnar path")
	}
}

func TestColBatchAppendJoin(t *testing.T) {
	left := MustSchema(Column{Name: "a", Kind: KindInt}, Column{Name: "b", Kind: KindString})
	right := MustSchema(Column{Name: "c", Kind: KindInt}, Column{Name: "d", Kind: KindFloat})
	out := left.Concat(right)
	in := NewInterner()

	lb := NewColBatch(left)
	if !lb.AppendVals(5, 50, false, []Value{Int(1), String_("ftp")}, in) {
		t.Fatal("append failed")
	}
	ob := NewColBatch(out)
	// Probe from the left side: stored right values go after src columns.
	if !ob.AppendJoin(lb, 0, 0, []Value{Int(2), Float(3.5)}, 5, 40, false, in) {
		t.Fatal("AppendJoin side 0 failed")
	}
	// Probe from the right side: stored left values go before src columns.
	rb := NewColBatch(right)
	if !rb.AppendVals(6, 60, true, []Value{Int(2), Float(3.5)}, in) {
		t.Fatal("append failed")
	}
	if !ob.AppendJoin(rb, 0, 1, []Value{Int(9), String_("dns")}, 6, 55, true, in) {
		t.Fatal("AppendJoin side 1 failed")
	}

	var arena ValueArena
	got := ob.AppendRowsTo(nil, &arena, in)
	want := []Tuple{
		{TS: 5, Exp: 40, Vals: []Value{Int(1), String_("ftp"), Int(2), Float(3.5)}},
		{TS: 6, Exp: 55, Neg: true, Vals: []Value{Int(9), String_("dns"), Int(2), Float(3.5)}},
	}
	for i := range want {
		if got[i].TS != want[i].TS || got[i].Exp != want[i].Exp || got[i].Neg != want[i].Neg || !got[i].SameVals(want[i]) {
			t.Errorf("row %d: %v, want %v", i, got[i], want[i])
		}
	}

	// Off-kind stored values are rejected without mutating the batch.
	n := ob.Len()
	if ob.AppendJoin(lb, 0, 0, []Value{Null, Float(3.5)}, 5, 40, false, in) {
		t.Error("AppendJoin accepted off-kind stored values")
	}
	if ob.Len() != n {
		t.Error("failed AppendJoin mutated the batch")
	}
}

func TestColBatchAppendMaskedAndProjection(t *testing.T) {
	schema := MustSchema(Column{Name: "a", Kind: KindInt}, Column{Name: "b", Kind: KindString})
	in := NewInterner()
	src := NewColBatch(schema)
	for i := int64(0); i < 4; i++ {
		src.AppendVals(i, i+10, i%2 == 1, []Value{Int(i), String_("s")}, in)
	}

	dst := NewColBatch(schema)
	dst.AppendMasked(src, []bool{true, false, false, true})
	if dst.Len() != 2 || dst.Col(0).Int[0] != 0 || dst.Col(0).Int[1] != 3 {
		t.Fatalf("masked append wrong: len=%d", dst.Len())
	}
	if !dst.NegAt(1) || dst.NegAt(0) {
		t.Fatal("masked append dropped Neg flags")
	}
	dst.Reset()
	dst.AppendMasked(src, nil)
	if dst.Len() != 4 {
		t.Fatalf("nil-mask append: len=%d, want 4", dst.Len())
	}

	proj := NewColBatch(MustSchema(Column{Name: "b", Kind: KindString}))
	proj.AppendProjection(src, []int{1})
	if proj.Len() != 4 || proj.ValueAt(2, 0, in).S != "s" {
		t.Fatal("projection wrong")
	}
	if proj.TSAt(3) != 3 || proj.ExpAt(3) != 13 || !proj.NegAt(3) {
		t.Fatal("projection dropped control columns")
	}
}

func TestValueArena(t *testing.T) {
	var a ValueArena
	if got := a.Alloc(0); got != nil {
		t.Fatal("Alloc(0) must return nil")
	}
	x := a.Alloc(3)
	y := a.Alloc(2)
	if len(x) != 3 || len(y) != 2 {
		t.Fatalf("lengths %d, %d", len(x), len(y))
	}
	if cap(x) != 3 {
		t.Fatalf("cap(x) = %d, want 3: appends must copy out, not clobber neighbors", cap(x))
	}
	x[2] = Int(42)
	if y[0].Kind != KindNull || y[1].Kind != KindNull {
		t.Fatal("arena rows overlap")
	}
	// Appending to an arena row must not overwrite the next row.
	_ = append(x, Int(99))
	if y[0].Kind != KindNull {
		t.Fatal("append on arena row clobbered neighbor")
	}
	// Oversized requests still work.
	big := a.Alloc(arenaSlab)
	if len(big) != arenaSlab {
		t.Fatal("oversized alloc wrong length")
	}
	// Steady state allocates ~1/(slab/n) per call; far under 1.
	allocs := testing.AllocsPerRun(1000, func() { _ = a.Alloc(4) })
	if allocs > 0.05 {
		t.Errorf("steady-state arena alloc: %v allocs/op", allocs)
	}
}

func TestColumnarKinds(t *testing.T) {
	ok := MustSchema(Column{Name: "a", Kind: KindInt}, Column{Name: "b", Kind: KindFloat}, Column{Name: "c", Kind: KindString})
	if !ColumnarKinds(ok) {
		t.Error("scalar schema reported unsupported")
	}
	bad := MustSchema(Column{Name: "a", Kind: KindNull})
	if ColumnarKinds(bad) {
		t.Error("NULL-kinded schema reported supported")
	}
}

func TestColBatchNaNRoundTrip(t *testing.T) {
	schema := MustSchema(Column{Name: "f", Kind: KindFloat})
	in := NewInterner()
	cb := NewColBatch(schema)
	if !cb.AppendVals(1, 2, false, []Value{Float(math.NaN())}, in) {
		t.Fatal("append failed")
	}
	got := cb.ValueAt(0, 0, in)
	if !math.IsNaN(got.F) {
		t.Fatalf("NaN did not survive: %v", got)
	}
	// Canonical key semantics: NaN keys equal themselves on both paths.
	if cb.Key(0, []int{0}, in) != (Tuple{Vals: []Value{Float(math.NaN())}}).Key([]int{0}) {
		t.Error("NaN key mismatch between columnar and row paths")
	}
}
