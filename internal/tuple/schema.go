package tuple

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a schema.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of named, typed columns. Schemas are immutable
// after construction; operators derive new schemas rather than mutating.
type Schema struct {
	cols  []Column
	index map[string]int
}

// NewSchema builds a schema from columns. Column names must be unique.
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{cols: append([]Column(nil), cols...), index: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("schema: column %d has empty name", i)
		}
		if _, dup := s.index[c.Name]; dup {
			return nil, fmt.Errorf("schema: duplicate column %q", c.Name)
		}
		s.index[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for tests and literals.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Col returns the i-th column.
func (s *Schema) Col(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// Index returns the position of the named column, or -1 if absent.
func (s *Schema) Index(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// MustIndex is Index that panics when the column is absent.
func (s *Schema) MustIndex(name string) int {
	i := s.Index(name)
	if i < 0 {
		panic(fmt.Sprintf("schema: no column %q in %s", name, s))
	}
	return i
}

// Project returns a new schema keeping only the columns at the given
// positions, in that order.
func (s *Schema) Project(positions []int) (*Schema, error) {
	cols := make([]Column, len(positions))
	for i, p := range positions {
		if p < 0 || p >= len(s.cols) {
			return nil, fmt.Errorf("schema: project position %d out of range (%d cols)", p, len(s.cols))
		}
		cols[i] = s.cols[p]
	}
	return NewSchema(cols...)
}

// Concat returns the concatenation of two schemas, renaming collisions on the
// right side with a "r_" prefix (and numeric suffixes if still colliding).
// Used by join operators to derive their output schema.
func (s *Schema) Concat(o *Schema) *Schema {
	cols := append([]Column(nil), s.cols...)
	used := make(map[string]bool, len(cols)+o.Len())
	for _, c := range cols {
		used[c.Name] = true
	}
	for _, c := range o.cols {
		name := c.Name
		for n := 0; used[name]; n++ {
			if n == 0 {
				name = "r_" + c.Name
			} else {
				name = fmt.Sprintf("r_%s_%d", c.Name, n)
			}
		}
		used[name] = true
		cols = append(cols, Column{Name: name, Kind: c.Kind})
	}
	out, err := NewSchema(cols...)
	if err != nil {
		panic(err) // unreachable: names are de-duplicated above
	}
	return out
}

// EqualLayout reports whether two schemas have the same column kinds in the
// same order (names may differ). Union and intersection require this.
func (s *Schema) EqualLayout(o *Schema) bool {
	if s.Len() != o.Len() {
		return false
	}
	for i := range s.cols {
		if s.cols[i].Kind != o.cols[i].Kind {
			return false
		}
	}
	return true
}

// String renders the schema as "(name kind, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Kind)
	}
	b.WriteByte(')')
	return b.String()
}
