package tuple

import "testing"

func TestInternerDenseIDs(t *testing.T) {
	in := NewInterner()
	a := in.Intern("ftp")
	b := in.Intern("http")
	c := in.Intern("ftp")
	if a != 0 || b != 1 {
		t.Fatalf("ids not dense: got %d, %d", a, b)
	}
	if c != a {
		t.Fatalf("re-interning returned %d, want %d", c, a)
	}
	if in.Len() != 2 {
		t.Fatalf("Len = %d, want 2", in.Len())
	}
	if in.Str(a) != "ftp" || in.Str(b) != "http" {
		t.Fatalf("Str round-trip broken: %q, %q", in.Str(a), in.Str(b))
	}
	if v := in.Value(b); v.Kind != KindString || v.S != "http" {
		t.Fatalf("Value(%d) = %v", b, v)
	}
}

func TestInternerLookup(t *testing.T) {
	in := NewInterner()
	if _, ok := in.Lookup("ftp"); ok {
		t.Fatal("Lookup on empty interner reported ok")
	}
	id := in.Intern("ftp")
	got, ok := in.Lookup("ftp")
	if !ok || got != id {
		t.Fatalf("Lookup = (%d, %v), want (%d, true)", got, ok, id)
	}
	if in.Len() != 1 {
		t.Fatal("Lookup must not intern")
	}
}

func TestInternerReset(t *testing.T) {
	in := NewInterner()
	in.Intern("old")
	if err := in.Reset([]string{"ftp", "http", "smtp"}); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if in.Len() != 3 {
		t.Fatalf("Len after Reset = %d, want 3", in.Len())
	}
	for i, s := range []string{"ftp", "http", "smtp"} {
		id, ok := in.Lookup(s)
		if !ok || id != uint32(i) {
			t.Fatalf("Lookup(%q) = (%d, %v), want (%d, true)", s, id, ok, i)
		}
	}
	// Post-reset interning continues from the restored table.
	if id := in.Intern("ftp"); id != 0 {
		t.Fatalf("Intern after Reset assigned %d, want 0", id)
	}
	if id := in.Intern("dns"); id != 3 {
		t.Fatalf("new string after Reset got id %d, want 3", id)
	}
}

func TestInternerResetRejectsDuplicates(t *testing.T) {
	in := NewInterner()
	if err := in.Reset([]string{"ftp", "http", "ftp"}); err == nil {
		t.Fatal("Reset accepted a duplicate snapshot entry")
	}
}

func TestInternerSteadyStateZeroAllocs(t *testing.T) {
	in := NewInterner()
	in.Intern("ftp")
	in.Intern("http")
	allocs := testing.AllocsPerRun(1000, func() {
		if in.Intern("ftp") != 0 {
			t.Fatal("bad id")
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Intern: %v allocs/op, want 0", allocs)
	}
}

// TestInternerCacheFlushOnReset pins the cache hazard: an id cached before
// Reset must not leak through after the table changes id assignments.
func TestInternerCacheFlushOnReset(t *testing.T) {
	in := NewInterner()
	in.Intern("ftp")  // id 0
	in.Intern("http") // id 1
	in.Intern("http") // warm the cache slot
	if err := in.Reset([]string{"dns", "http"}); err != nil {
		t.Fatal(err)
	}
	if id := in.Intern("http"); id != 1 {
		t.Fatalf("Intern(http) after Reset = %d, want 1", id)
	}
	if id := in.Intern("ftp"); id != 2 {
		t.Fatalf("Intern(ftp) after Reset = %d, want 2 (fresh id)", id)
	}
	// Repeated interns keep resolving through the refilled cache.
	for i := 0; i < 3; i++ {
		if id := in.Intern("dns"); id != 0 {
			t.Fatalf("Intern(dns) = %d, want 0", id)
		}
	}
}
