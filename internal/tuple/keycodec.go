package tuple

// Raw exposes the key's internal representation — the packed column count,
// the fixed value array, and the wide-key string rendering — so the
// checkpoint codec can serialize keys exactly. A key rebuilt by KeyFromRaw
// from these parts compares == to the original, which is what lets decoded
// keys index the same map buckets they were saved from.
func (k Key) Raw() (n int, v [3]Value, wide string) {
	return k.n, k.v, k.wide
}

// KeyFromRaw reconstructs a key from the parts returned by Raw. It performs
// no canonicalization: the parts were produced by Tuple.Key, which already
// canonicalized the values, so an exact field copy preserves equality.
func KeyFromRaw(n int, v [3]Value, wide string) Key {
	return Key{n: n, v: v, wide: wide}
}
