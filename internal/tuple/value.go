// Package tuple defines the data model shared by every component of the
// stream processor: typed scalar values, relational schemas, and timestamped
// tuples that may carry a deletion (negative) flag.
//
// The model follows Section 2 of Golab & Özsu (SIGMOD 2005): a data stream is
// an append-only sequence of relational tuples with the same schema, each
// carrying a non-decreasing timestamp TS assigned on arrival and, once it has
// passed through a sliding window, an expiration timestamp Exp = TS + window
// size. Negative tuples (Neg = true) signal that a previously reported tuple
// is no longer part of a result.
package tuple

import (
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the scalar types a Value can hold.
type Kind uint8

const (
	// KindNull is the zero Kind; it compares less than every other value.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE float.
	KindFloat
	// KindString is an immutable byte string.
	KindString
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a typed scalar. It is a plain comparable struct (usable as a map
// key) rather than an interface so that hot operator paths avoid boxing and
// per-tuple allocation.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
}

// Null is the null value.
var Null = Value{}

// Int returns an integer value.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// Float returns a float value.
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }

// String_ returns a string value. The trailing underscore avoids clashing
// with the fmt.Stringer method on Value.
func String_(s string) Value { return Value{Kind: KindString, S: s} }

// Bool returns an integer-encoded boolean (1 or 0). The engine has no
// dedicated boolean kind; predicates evaluate natively to Go bools.
func Bool(b bool) Value {
	if b {
		return Int(1)
	}
	return Int(0)
}

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// AsFloat returns the numeric content of v widened to float64.
// Strings and nulls return 0.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindInt:
		return float64(v.I)
	case KindFloat:
		return v.F
	default:
		return 0
	}
}

// AsInt returns the numeric content of v narrowed to int64.
// Strings and nulls return 0.
func (v Value) AsInt() int64 {
	switch v.Kind {
	case KindInt:
		return v.I
	case KindFloat:
		return int64(v.F)
	default:
		return 0
	}
}

// Compare orders two values. Values of different kinds order by kind, except
// that ints and floats compare numerically. NaN floats order below all other
// floats (and equal to each other) so that Compare is a total order.
func (v Value) Compare(o Value) int {
	// Numeric cross-kind comparison.
	if v.Kind == KindInt && o.Kind == KindFloat {
		return cmpFloat(float64(v.I), o.F)
	}
	if v.Kind == KindFloat && o.Kind == KindInt {
		return cmpFloat(v.F, float64(o.I))
	}
	if v.Kind != o.Kind {
		if v.Kind < o.Kind {
			return -1
		}
		return 1
	}
	switch v.Kind {
	case KindNull:
		return 0
	case KindInt:
		switch {
		case v.I < o.I:
			return -1
		case v.I > o.I:
			return 1
		}
		return 0
	case KindFloat:
		return cmpFloat(v.F, o.F)
	case KindString:
		switch {
		case v.S < o.S:
			return -1
		case v.S > o.S:
			return 1
		}
		return 0
	}
	return 0
}

func cmpFloat(a, b float64) int {
	an, bn := math.IsNaN(a), math.IsNaN(b)
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports whether two values compare equal under Compare.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// Less reports whether v orders strictly before o.
func (v Value) Less(o Value) bool { return v.Compare(o) < 0 }

// Hash64 returns an FNV-1a hash of the value, with ints and integral floats
// hashing identically so that Equal values hash equal.
func (v Value) Hash64() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime
	}
	switch v.Kind {
	case KindNull:
		mix(0)
	case KindInt:
		mixInt(&h, v.I)
	case KindFloat:
		if f := v.F; f == math.Trunc(f) && !math.IsInf(f, 0) && f >= math.MinInt64 && f <= math.MaxInt64 {
			mixInt(&h, int64(f)) // hash like the equal int
		} else {
			bits := math.Float64bits(f)
			for i := 0; i < 8; i++ {
				mix(byte(bits >> (8 * i)))
			}
		}
	case KindString:
		mix(3)
		for i := 0; i < len(v.S); i++ {
			mix(v.S[i])
		}
	}
	return h
}

func mixInt(h *uint64, i int64) {
	const prime = 1099511628211
	u := uint64(i)
	for k := 0; k < 8; k++ {
		*h ^= uint64(byte(u >> (8 * k)))
		*h *= prime
	}
}

// String renders the value for debugging and CSV output.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	default:
		return fmt.Sprintf("?%d", v.Kind)
	}
}

// ParseValue parses s into a value of the requested kind.
func ParseValue(kind Kind, s string) (Value, error) {
	switch kind {
	case KindInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Null, fmt.Errorf("parse int %q: %w", s, err)
		}
		return Int(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Null, fmt.Errorf("parse float %q: %w", s, err)
		}
		return Float(f), nil
	case KindString:
		return String_(s), nil
	case KindNull:
		return Null, nil
	default:
		return Null, fmt.Errorf("unknown kind %v", kind)
	}
}
