package tuple

// arenaSlab is the number of Values carved per slab. At 40 bytes per Value a
// slab is ~40 KiB: large enough that steady-state row materialization
// amortizes to well under one allocation per tuple, small enough that a few
// straggling live rows do not pin much dead memory (window state expires in
// FIFO order, so slabs drain roughly front to back).
const arenaSlab = 1024

// ValueArena carves []Value rows out of shared slabs. The columnar execution
// path materializes row-form tuples at its boundaries — operator state
// insertion, the result view, retraction observers — and a per-row
// make([]Value, n) there would reintroduce exactly the per-tuple allocation
// columnar layout removes. Arena rows are never freed individually; the slab
// is garbage once every row carved from it is unreachable.
//
// Rows from Alloc have len == cap == n, so an append on a materialized tuple
// copies out instead of clobbering a neighbor.
type ValueArena struct {
	slab []Value
	// free holds recycled rows handed back through Recycle. Steady-state
	// window churn materializes and expires rows at the same rate, so with
	// recycling the arena stops carving new slabs entirely — the working set
	// is the window's row count, reused in place.
	free [][]Value
}

// arenaFreeRows bounds the recycled-row list; beyond it, returned rows drop
// to the GC (a one-off expiry burst should not pin its peak forever).
const arenaFreeRows = 1024

// Alloc returns a []Value of length n — a recycled row when one of exactly
// that width is on top of the free list, else a row carved from the current
// slab (starting a fresh slab when the remainder is too small). Recycled rows
// hold stale values; every caller overwrites all n entries. Oversized
// requests (beyond a quarter slab) get a dedicated allocation so one wide row
// cannot burn most of a slab.
func (a *ValueArena) Alloc(n int) []Value {
	if n == 0 {
		return nil
	}
	if k := len(a.free); k > 0 && len(a.free[k-1]) == n {
		out := a.free[k-1]
		a.free[k-1] = nil
		a.free = a.free[:k-1]
		return out
	}
	if n > len(a.slab) {
		if n > arenaSlab/4 {
			return make([]Value, n)
		}
		a.slab = make([]Value, arenaSlab)
	}
	out := a.slab[:n:n]
	a.slab = a.slab[n:]
	return out
}

// Recycle hands a row back for reuse by a later Alloc of the same width. The
// caller must own the row exclusively — nothing may read or write it after
// this call. Recycling a row that other code still references (for example a
// caller-provided value slice that was stored by reference) corrupts that
// holder's data, so owners of mixed-provenance rows must not recycle at all.
func (a *ValueArena) Recycle(vals []Value) {
	if len(vals) == 0 || len(a.free) >= arenaFreeRows {
		return
	}
	a.free = append(a.free, vals[:len(vals):len(vals)])
}
