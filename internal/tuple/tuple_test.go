package tuple

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewAndExpiration(t *testing.T) {
	tp := New(10, Int(1), String_("a"))
	if tp.TS != 10 || tp.Exp != NeverExpires || tp.Neg {
		t.Errorf("New = %+v", tp)
	}
	w := tp.WithExp(60)
	if w.Exp != 60 {
		t.Errorf("WithExp = %d", w.Exp)
	}
	if w.Expired(59) {
		t.Error("tuple live at now < exp")
	}
	if !w.Expired(60) {
		t.Error("tuple expired at now == exp")
	}
	// WithExp never extends.
	if w.WithExp(100).Exp != 60 {
		t.Error("WithExp must not extend expiration")
	}
}

func TestNegativeTwin(t *testing.T) {
	tp := New(5, Int(1)).WithExp(55)
	n := tp.Negative(30)
	if !n.Neg || n.TS != 30 || n.Exp != 55 || !n.SameVals(tp) {
		t.Errorf("Negative = %+v", n)
	}
}

func TestSameVals(t *testing.T) {
	a := New(1, Int(1), Float(2))
	b := New(9, Int(1), Float(2))
	c := New(1, Int(1), Float(3))
	d := New(1, Int(1))
	if !a.SameVals(b) {
		t.Error("a should match b (timestamps ignored)")
	}
	if a.SameVals(c) || a.SameVals(d) {
		t.Error("value or arity mismatch must not match")
	}
	// Cross-kind numeric equality applies to SameVals too.
	if !New(0, Int(2)).SameVals(New(0, Float(2))) {
		t.Error("2 and 2.0 are the same value")
	}
}

func TestKeyPackingNarrowAndWide(t *testing.T) {
	tp := New(0, Int(1), Int(2), Int(3), Int(4), Int(5))
	k1 := tp.Key([]int{0})
	k1b := New(0, Int(1)).Key([]int{0})
	if k1 != k1b {
		t.Error("single-column keys with equal values must be ==")
	}
	k3 := tp.Key([]int{0, 1, 2})
	if k3 == k1 {
		t.Error("different arity keys must differ")
	}
	k5 := tp.Key([]int{0, 1, 2, 3, 4})
	k5b := tp.Key([]int{0, 1, 2, 3, 4})
	if k5 != k5b {
		t.Error("wide keys with equal values must be ==")
	}
	k5c := New(0, Int(1), Int(2), Int(3), Int(4), Int(6)).Key([]int{0, 1, 2, 3, 4})
	if k5 == k5c {
		t.Error("wide keys with different values must differ")
	}
	if k5.Hash64() != k5b.Hash64() {
		t.Error("equal wide keys must hash equal")
	}
	if !strings.Contains(k3.String(), "1") {
		t.Errorf("key string: %q", k3.String())
	}
	if k5.String() == "" {
		t.Error("wide key string empty")
	}
}

func TestKeyStringAmbiguity(t *testing.T) {
	// Int 1 and string "1" must produce different wide keys.
	a := New(0, Int(1), Int(1), Int(1), Int(1)).Key([]int{0, 1, 2, 3})
	b := New(0, String_("1"), Int(1), Int(1), Int(1)).Key([]int{0, 1, 2, 3})
	if a == b {
		t.Error("kind must be part of wide key encoding")
	}
}

func TestCloneIsolation(t *testing.T) {
	orig := New(1, Int(7))
	cl := orig.Clone()
	cl.Vals[0] = Int(8)
	if orig.Vals[0] != Int(7) {
		t.Error("Clone must deep-copy Vals")
	}
}

func TestConcat(t *testing.T) {
	a := New(10, Int(1)).WithExp(100)
	b := New(20, Int(2)).WithExp(50)
	c := a.Concat(b, 20)
	if c.TS != 20 || c.Exp != 50 || len(c.Vals) != 2 {
		t.Errorf("Concat = %+v", c)
	}
	if c.Vals[0] != Int(1) || c.Vals[1] != Int(2) {
		t.Errorf("Concat vals = %v", c.Vals)
	}
	// Exp is the minimum regardless of order.
	if d := b.Concat(a, 20); d.Exp != 50 {
		t.Errorf("Concat exp = %d", d.Exp)
	}
}

func TestTupleString(t *testing.T) {
	s := New(3, Int(1)).WithExp(9).String()
	if !strings.HasPrefix(s, "+(") || !strings.Contains(s, "@3") || !strings.Contains(s, "..9") {
		t.Errorf("String = %q", s)
	}
	n := New(3, Int(1)).Negative(4).String()
	if !strings.HasPrefix(n, "-(") {
		t.Errorf("negative String = %q", n)
	}
}

func TestKeyEqualityMatchesValsProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(args []reflect.Value, r *rand.Rand) {
			n := 1 + r.Intn(5)
			mk := func() Tuple {
				vals := make([]Value, n)
				for i := range vals {
					vals[i] = randomValue(r)
				}
				return New(0, vals...)
			}
			args[0] = reflect.ValueOf(mk())
			args[1] = reflect.ValueOf(mk())
			cols := make([]int, n)
			for i := range cols {
				cols[i] = i
			}
			args[2] = reflect.ValueOf(cols)
		},
	}
	prop := func(a, b Tuple, cols []int) bool {
		// Keys over all columns are equal iff SameVals.
		return (a.Key(cols) == b.Key(cols)) == a.SameVals(b)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
