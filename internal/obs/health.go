package obs

import (
	"encoding/json"
	"fmt"
	"html"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Severity is a health rule's state: OK < WARN < CRIT.
type Severity int

const (
	SevOK Severity = iota
	SevWarn
	SevCrit
)

func (s Severity) String() string {
	switch s {
	case SevOK:
		return "OK"
	case SevWarn:
		return "WARN"
	case SevCrit:
		return "CRIT"
	default:
		return "UNKNOWN"
	}
}

// MarshalJSON renders the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON parses a severity name back, so HealthStatus round-trips
// for API consumers of /debug/health.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "OK":
		*s = SevOK
	case "WARN":
		*s = SevWarn
	case "CRIT":
		*s = SevCrit
	default:
		return fmt.Errorf("unknown severity %q", name)
	}
	return nil
}

// SignalSource selects how a Signal reads its series' history window.
type SignalSource int

const (
	// SourceValue reads the current value: cumulative total for counters
	// and histograms, the sampled value for gauges.
	SourceValue SignalSource = iota
	// SourceDelta sums the per-tick deltas across the window (counters,
	// histograms, log-histogram counts); for gauges it is newest minus
	// oldest value in the window.
	SourceDelta
	// SourceRate is SourceDelta divided by the window's elapsed seconds.
	SourceRate
	// SourceQuantile merges the window's bucket-wise log-histogram deltas
	// across all matching series and reads the Q-quantile of the combined
	// distribution (merging first keeps the quantile exact; quantiles of
	// per-series quantiles would not be).
	SourceQuantile
	// SourceAge reads a gauge holding a Nanotime() stamp and yields
	// nanoseconds since that stamp. A value <= 0 (never stamped) yields 0:
	// a process that has never checkpointed is not stale.
	SourceAge
)

func (s SignalSource) String() string {
	switch s {
	case SourceValue:
		return "value"
	case SourceDelta:
		return "delta"
	case SourceRate:
		return "rate"
	case SourceQuantile:
		return "quantile"
	case SourceAge:
		return "age"
	default:
		return "unknown"
	}
}

// SignalAgg folds the per-series readings of a signal that matches more
// than one label set into one value.
type SignalAgg int

const (
	AggSum SignalAgg = iota
	AggMax
	AggMin
)

// Signal is the left-hand side of a health rule: one scalar derived from
// the history window of every series matching (Series, Match).
type Signal struct {
	// Series is the metric name; Match is a label subset that matching
	// series must carry (empty matches every label set of the name).
	Series string
	Match  Labels
	// Source selects value/delta/rate/quantile/age; Window is the number
	// of sample ticks it looks back over (0 = whole retained window for
	// delta/quantile, 1 tick for rate).
	Source SignalSource
	Window int
	// Q is the quantile for SourceQuantile, e.g. 0.99.
	Q float64
	// Agg folds multiple matching series (default AggSum).
	Agg SignalAgg
	// Minus, when set, is evaluated the same way and subtracted — e.g.
	// staleness lag = max(upa_clock) − min(upa_watermark).
	Minus *Signal
}

// Rule is one declarative health check evaluated every sample tick.
// Thresholds compare the signal upward by default (breach when value >
// threshold) or downward with Below; NaN disables a threshold.
type Rule struct {
	Name string
	Help string
	Signal
	Warn  float64
	Crit  float64
	Below bool
	// ForTicks is how many consecutive breaching ticks escalation needs
	// (min-duration); HoldTicks is how many consecutive clear ticks
	// de-escalation needs (hysteresis). Both default to 1.
	ForTicks  int
	HoldTicks int
}

// Transition is one alert state change, delivered to every sink.
type Transition struct {
	Rule      string   `json:"rule"`
	From      Severity `json:"from"`
	To        Severity `json:"to"`
	Value     float64  `json:"value"`
	WallNanos int64    `json:"wall_nanos"`
}

// AlertSink receives alert transitions. Sinks run on the sampling
// goroutine; slow sinks delay the next tick, not the engine.
type AlertSink interface {
	Alert(t Transition)
}

// AlertFunc adapts a function to the AlertSink interface — the callback
// sink a future server's admission controller hangs off.
type AlertFunc func(t Transition)

// Alert implements AlertSink.
func (f AlertFunc) Alert(t Transition) { f(t) }

// LogAlertSink writes one human-readable line per transition.
type LogAlertSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewLogAlertSink builds a line-per-transition sink on w.
func NewLogAlertSink(w io.Writer) *LogAlertSink { return &LogAlertSink{w: w} }

// Alert implements AlertSink.
func (s *LogAlertSink) Alert(t Transition) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(s.w, "health: %s %s -> %s (value %.6g) at %s\n",
		t.Rule, t.From, t.To, t.Value,
		time.Unix(0, t.WallNanos).UTC().Format(time.RFC3339Nano))
}

// TracerAlertSink forwards transitions as EvAlert events through an
// existing Tracer, reusing its JSONL/ring sinks: Node carries the rule
// name, Tuple the "FROM->TO" edge, N the new severity, Nanos the value.
type TracerAlertSink struct{ T *Tracer }

// Alert implements AlertSink.
func (s TracerAlertSink) Alert(t Transition) {
	if s.T == nil {
		return
	}
	s.T.Emit(Event{
		Kind:  EvAlert,
		TS:    t.WallNanos,
		Node:  t.Rule,
		Tuple: t.From.String() + "->" + t.To.String(),
		N:     int(t.To),
		Nanos: int64(t.Value),
	})
}

// ruleState is one rule's alert state machine. Escalation requires
// ForTicks consecutive ticks at the candidate severity; de-escalation
// requires HoldTicks consecutive ticks — both reset whenever the raw
// classification changes, which is what suppresses flapping.
type ruleState struct {
	rule         Rule
	cur          Severity
	pending      Severity
	pendingTicks int
	sinceWall    int64
	transitions  int64
	lastValue    float64
	matched      bool

	sevGauge   *Gauge
	transCount *Counter
}

func (rs *ruleState) classify(v float64) Severity {
	breach := func(th float64) bool {
		if math.IsNaN(th) {
			return false
		}
		if rs.rule.Below {
			return v < th
		}
		return v > th
	}
	switch {
	case breach(rs.rule.Crit):
		return SevCrit
	case breach(rs.rule.Warn):
		return SevWarn
	default:
		return SevOK
	}
}

// tick advances the state machine one sample and reports a transition if
// one fired.
func (rs *ruleState) tick(v float64, matched bool, wall int64) (Transition, bool) {
	rs.lastValue = v
	rs.matched = matched
	raw := SevOK
	if matched {
		raw = rs.classify(v)
	}
	if raw == rs.cur {
		rs.pending = rs.cur
		rs.pendingTicks = 0
		return Transition{}, false
	}
	if raw != rs.pending {
		rs.pending = raw
		rs.pendingTicks = 0
	}
	rs.pendingTicks++
	need := rs.rule.ForTicks
	if raw < rs.cur {
		need = rs.rule.HoldTicks
	}
	if need < 1 {
		need = 1
	}
	if rs.pendingTicks < need {
		return Transition{}, false
	}
	t := Transition{Rule: rs.rule.Name, From: rs.cur, To: raw, Value: v, WallNanos: wall}
	rs.cur = raw
	rs.pending = raw
	rs.pendingTicks = 0
	rs.sinceWall = wall
	rs.transitions++
	return t, true
}

// Health evaluates a rule set against a History every sample tick and
// drives per-rule alert state machines. Its own state is exposed back
// into the registry as upa_health_severity{rule} and
// upa_health_transitions_total{rule}.
type Health struct {
	hist *History

	mu    sync.Mutex
	rules []*ruleState
	sinks []AlertSink
}

// Health metric names.
const (
	MetricHealthSeverity    = "upa_health_severity"
	MetricHealthTransitions = "upa_health_transitions_total"
)

// NewHealth builds a monitor over hist with the given rules and hooks its
// evaluation into hist's sample ticks. Rules with duplicate or empty
// names are kept as-is (names are only identifiers for sinks and
// exposition).
func NewHealth(hist *History, rules ...Rule) *Health {
	h := &Health{hist: hist}
	reg := hist.Registry()
	now := time.Now().UnixNano()
	for _, r := range rules {
		rs := &ruleState{rule: r, sinceWall: now}
		rs.sevGauge = reg.Gauge(MetricHealthSeverity,
			"Current severity per health rule (0=OK 1=WARN 2=CRIT).",
			Labels{"rule": r.Name})
		rs.transCount = reg.Counter(MetricHealthTransitions,
			"Alert state transitions per health rule.",
			Labels{"rule": r.Name})
		h.rules = append(h.rules, rs)
	}
	hist.AfterSample(h.evaluate)
	return h
}

// History returns the underlying sampler. Safe on nil.
func (h *Health) History() *History {
	if h == nil {
		return nil
	}
	return h.hist
}

// AddSink registers an alert sink. Safe on nil.
func (h *Health) AddSink(s AlertSink) {
	if h == nil || s == nil {
		return
	}
	h.mu.Lock()
	h.sinks = append(h.sinks, s)
	h.mu.Unlock()
}

// Start begins periodic sampling (and therefore evaluation) at the
// history's configured interval. Safe on nil.
func (h *Health) Start() {
	if h == nil {
		return
	}
	h.hist.Start()
}

// Stop halts periodic sampling. Safe on nil.
func (h *Health) Stop() {
	if h == nil {
		return
	}
	h.hist.Stop()
}

// Tick takes one manual sample (which runs an evaluation). Safe on nil.
func (h *Health) Tick() {
	if h == nil {
		return
	}
	h.hist.Sample()
}

// evaluate runs every rule against the freshly stored tick. It is
// registered as an AfterSample hook, so it runs on the sampling
// goroutine, strictly ordered with ticks.
func (h *Health) evaluate() {
	wall := time.Now().UnixNano()
	h.mu.Lock()
	rules := h.rules
	sinks := append([]AlertSink(nil), h.sinks...)
	h.mu.Unlock()
	var fired []Transition
	h.hist.mu.Lock()
	mono := int64(0)
	if h.hist.count > 0 {
		mono = h.hist.times[int((h.hist.count-1)%int64(h.hist.cfg.Capacity))].mono
	}
	for _, rs := range rules {
		v, matched := h.hist.evalSignalLocked(rs.rule.Signal, mono)
		t, ok := rs.tick(v, matched, wall)
		rs.sevGauge.Set(int64(rs.cur))
		if ok {
			rs.transCount.Inc()
			fired = append(fired, t)
		}
	}
	h.hist.mu.Unlock()
	for _, t := range fired {
		for _, s := range sinks {
			s.Alert(t)
		}
	}
}

// evalSignalLocked computes a signal over the retained window. The bool
// reports whether any series matched — unmatched signals read as 0 and
// leave their rules OK (a series that has never existed is not a fault).
// Caller holds h.mu.
func (h *History) evalSignalLocked(sig Signal, nowMono int64) (float64, bool) {
	rings := h.matchRingsLocked(sig.Series, sig.Match)
	if len(rings) == 0 {
		return 0, false
	}
	if sig.Source == SourceQuantile {
		var merged LogHistogramSnapshot
		for _, r := range rings {
			merged = merged.Merge(h.windowHistLocked(r, sig.Window))
		}
		if merged.Count == 0 {
			return 0, true
		}
		return float64(merged.Quantile(sig.Q)), true
	}
	agg := math.NaN()
	fold := func(v float64) {
		switch {
		case math.IsNaN(agg):
			agg = v
		case sig.Agg == AggMax && v > agg:
			agg = v
		case sig.Agg == AggMin && v < agg:
			agg = v
		case sig.Agg == AggSum:
			agg += v
		}
	}
	for _, r := range rings {
		switch sig.Source {
		case SourceValue:
			if r.kind == kindGauge {
				fold(float64(h.latestLocked(r)))
			} else {
				fold(float64(r.prev))
			}
		case SourceDelta:
			fold(float64(h.windowDeltaLocked(r, sig.Window)))
		case SourceRate:
			n := sig.Window
			if n <= 0 {
				n = 1
			}
			elapsed := h.windowElapsedLocked(n)
			if elapsed <= 0 {
				fold(0)
			} else {
				fold(float64(h.windowDeltaLocked(r, n)) / (float64(elapsed) / 1e9))
			}
		case SourceAge:
			v := h.latestLocked(r)
			if r.kind != kindGauge {
				v = r.prev
			}
			if v <= 0 {
				fold(0)
			} else {
				age := nowMono - v
				if age < 0 {
					age = 0
				}
				fold(float64(age))
			}
		}
	}
	if math.IsNaN(agg) {
		agg = 0
	}
	value := agg
	if sig.Minus != nil {
		m, ok := h.evalSignalLocked(*sig.Minus, nowMono)
		if ok {
			value -= m
		}
	}
	return value, true
}

// windowDeltaLocked is the windowed change of a series: sum of deltas for
// counters/histograms, newest minus oldest sampled value for gauges.
func (h *History) windowDeltaLocked(r *seriesRing, n int) int64 {
	if r.kind != kindGauge {
		return h.windowSumLocked(r, n)
	}
	avail := h.retainedLocked()
	if n <= 0 || n > avail {
		n = avail
	}
	if n == 0 {
		return 0
	}
	newest := r.vals[int((h.count-1)%int64(h.cfg.Capacity))]
	oldest := r.vals[int((h.count-int64(n))%int64(h.cfg.Capacity))]
	return newest - oldest
}

// RuleStatus is one rule's current public state.
type RuleStatus struct {
	Rule        string   `json:"rule"`
	Help        string   `json:"help,omitempty"`
	Severity    Severity `json:"severity"`
	Value       float64  `json:"value"`
	Warn        *float64 `json:"warn,omitempty"`
	Crit        *float64 `json:"crit,omitempty"`
	Below       bool     `json:"below,omitempty"`
	Matched     bool     `json:"matched"`
	SinceNanos  int64    `json:"since_unix_nanos"`
	Transitions int64    `json:"transitions"`
}

// HealthStatus is the whole monitor's current public state.
type HealthStatus struct {
	Overall Severity     `json:"overall"`
	Samples int64        `json:"samples"`
	AtNanos int64        `json:"at_unix_nanos"`
	Rules   []RuleStatus `json:"rules"`
}

func finiteThreshold(v float64) *float64 {
	if math.IsNaN(v) {
		return nil
	}
	return &v
}

// Status reports every rule's current severity and the overall worst.
// Safe on nil (reports OK with no rules).
func (h *Health) Status() HealthStatus {
	st := HealthStatus{Overall: SevOK, AtNanos: time.Now().UnixNano()}
	if h == nil {
		return st
	}
	st.Samples = h.hist.Samples()
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, rs := range h.rules {
		if rs.cur > st.Overall {
			st.Overall = rs.cur
		}
		st.Rules = append(st.Rules, RuleStatus{
			Rule:        rs.rule.Name,
			Help:        rs.rule.Help,
			Severity:    rs.cur,
			Value:       rs.lastValue,
			Warn:        finiteThreshold(rs.rule.Warn),
			Crit:        finiteThreshold(rs.rule.Crit),
			Below:       rs.rule.Below,
			Matched:     rs.matched,
			SinceNanos:  rs.sinceWall,
			Transitions: rs.transitions,
		})
	}
	return st
}

// Overall returns the worst current severity. Safe on nil (OK).
func (h *Health) Overall() Severity { return h.Status().Overall }

// WriteText renders the status as an aligned human-readable report.
func (st HealthStatus) WriteText(w io.Writer) {
	fmt.Fprintf(w, "health: %s (%d samples)\n", st.Overall, st.Samples)
	if len(st.Rules) == 0 {
		return
	}
	width := 0
	for _, r := range st.Rules {
		if len(r.Rule) > width {
			width = len(r.Rule)
		}
	}
	for _, r := range st.Rules {
		thr := ""
		cmp := ">"
		if r.Below {
			cmp = "<"
		}
		if r.Warn != nil {
			thr += fmt.Sprintf(" warn%s%.6g", cmp, *r.Warn)
		}
		if r.Crit != nil {
			thr += fmt.Sprintf(" crit%s%.6g", cmp, *r.Crit)
		}
		note := ""
		if !r.Matched {
			note = " (no series)"
		}
		fmt.Fprintf(w, "  %-*s %-4s value %.6g%s transitions %d%s\n",
			width, r.Rule, r.Severity, r.Value, thr, r.Transitions, note)
	}
}

// HealthPage serves /debug/health: JSON by default, HTML for browsers
// (?format=html or an Accept header preferring text/html). A CRIT overall
// answers 503 so load balancers and the CI smoke can gate on the status
// code alone.
func HealthPage(h *Health) Page {
	return Page{
		Path:  "/debug/health",
		Title: "health status (rules + alert state; ?format=html)",
		Handler: http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Cache-Control", "no-cache")
			if h == nil {
				w.Header().Set("Content-Type", "application/json; charset=utf-8")
				w.WriteHeader(http.StatusServiceUnavailable)
				io.WriteString(w, `{"error":"health monitoring disabled"}`+"\n")
				return
			}
			st := h.Status()
			code := http.StatusOK
			if st.Overall == SevCrit {
				code = http.StatusServiceUnavailable
			}
			format := req.URL.Query().Get("format")
			if format == "" && strings.Contains(req.Header.Get("Accept"), "text/html") {
				format = "html"
			}
			if format == "html" {
				w.Header().Set("Content-Type", "text/html; charset=utf-8")
				w.WriteHeader(code)
				writeHealthHTML(w, st)
				return
			}
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.WriteHeader(code)
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(st)
		}),
	}
}

var sevColors = map[Severity]string{
	SevOK:   "#2e7d32",
	SevWarn: "#ef6c00",
	SevCrit: "#c62828",
}

func writeHealthHTML(w io.Writer, st HealthStatus) {
	fmt.Fprintf(w, `<!DOCTYPE html><html><head><meta charset="utf-8">`+
		`<meta http-equiv="refresh" content="5"><title>health</title>`+
		`<style>body{font-family:monospace;margin:2em}table{border-collapse:collapse}`+
		`td,th{border:1px solid #ccc;padding:4px 10px;text-align:left}`+
		`.sev{font-weight:bold;color:#fff;padding:2px 8px;border-radius:3px}</style>`+
		`</head><body>`)
	fmt.Fprintf(w, `<h1>health: <span class="sev" style="background:%s">%s</span></h1>`,
		sevColors[st.Overall], st.Overall)
	fmt.Fprintf(w, `<p>%d samples · %s</p>`, st.Samples,
		time.Unix(0, st.AtNanos).UTC().Format(time.RFC3339))
	fmt.Fprintf(w, `<table><tr><th>rule</th><th>state</th><th>value</th>`+
		`<th>warn</th><th>crit</th><th>transitions</th><th>help</th></tr>`)
	rules := append([]RuleStatus(nil), st.Rules...)
	sort.SliceStable(rules, func(i, j int) bool { return rules[i].Severity > rules[j].Severity })
	for _, r := range rules {
		thr := func(p *float64) string {
			if p == nil {
				return "—"
			}
			cmp := ">"
			if r.Below {
				cmp = "<"
			}
			return fmt.Sprintf("%s%.6g", cmp, *p)
		}
		val := fmt.Sprintf("%.6g", r.Value)
		if !r.Matched {
			val += " (no series)"
		}
		fmt.Fprintf(w, `<tr><td>%s</td><td><span class="sev" style="background:%s">%s</span></td>`+
			`<td>%s</td><td>%s</td><td>%s</td><td>%d</td><td>%s</td></tr>`,
			html.EscapeString(r.Rule), sevColors[r.Severity], r.Severity,
			html.EscapeString(val), thr(r.Warn), thr(r.Crit), r.Transitions,
			html.EscapeString(r.Help))
	}
	fmt.Fprintf(w, `</table></body></html>`)
}
