// Package obs is the engine's observability layer: a dependency-free
// metrics registry (atomic counters, gauges, and fixed-bucket histograms),
// a structured event tracer with pluggable sinks, and exposition in
// Prometheus text format and JSON — the instrumentation backbone that turns
// the paper's end-of-run aggregates (tuple touches, retraction volume,
// stored state) into live, continuously observable series.
//
// Everything is nil-safe: methods on a nil *Counter, *Gauge, *Histogram,
// *Registry, or *Tracer are no-ops, so instrumented code pays one nil check
// (no atomics, no allocation) when observability is disabled.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (n < 0 is ignored; counters never
// regress). Safe on nil.
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. Safe on nil.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value returns the current count. Safe on nil (returns 0).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (state sizes, clocks, high-water
// marks).
type Gauge struct{ v atomic.Int64 }

// Set stores v. Safe on nil.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta. Safe on nil.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// SetMax raises the gauge to v if v is larger (high-water marks). Safe on
// nil.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value. Safe on nil (returns 0).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram (Prometheus semantics:
// bucket i counts observations <= Buckets[i], plus an implicit +Inf
// bucket). Buckets are chosen at registration and never reallocated, so
// Observe is a branchless-ish scan plus two atomic adds.
type Histogram struct {
	bounds []int64 // ascending upper bounds
	counts []atomic.Int64
	inf    atomic.Int64
	sum    atomic.Int64
	n      atomic.Int64
}

// NewHistogram builds a standalone histogram with the given ascending
// bucket upper bounds.
func NewHistogram(bounds []int64) *Histogram {
	b := append([]int64(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b))}
}

// DefaultLatencyBuckets covers 100ns..100ms in roughly decade steps —
// suitable for per-tuple processing latency in nanoseconds.
func DefaultLatencyBuckets() []int64 {
	return []int64{100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
		100_000, 250_000, 500_000, 1_000_000, 10_000_000, 100_000_000}
}

// Observe records one value. Safe on nil.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.sum.Add(v)
	h.n.Add(1)
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			return
		}
	}
	h.inf.Add(1)
}

// Count returns the number of observations. Safe on nil.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of observed values. Safe on nil.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts[i] observations fell in
	// (Bounds[i-1], Bounds[i]]. Inf counts observations above the last
	// bound.
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Inf    int64   `json:"inf"`
	Sum    int64   `json:"sum"`
	Count  int64   `json:"count"`
}

// Snapshot copies the histogram's current state. Safe on nil.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Inf:    h.inf.Load(),
		Sum:    h.sum.Load(),
		Count:  h.n.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Labels are constant metric dimensions, e.g. {"op": "join", "node": "1"}.
type Labels map[string]string

// render serializes labels deterministically as {a="x",b="y"} (empty for
// no labels), which doubles as the registry key suffix.
func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the Prometheus text-format label-value escaping:
// exactly backslash, double quote, and newline are escaped (the exposition
// format defines no other escape sequences, so Go-style \t or \xNN escapes
// would make the output unparseable).
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindLogHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	case kindLogHistogram:
		// Log-bucketed histograms expose pre-computed quantiles, which is
		// the Prometheus summary shape.
		return "summary"
	default:
		return "untyped"
	}
}

// metric is one registered series (a name + one label set).
type metric struct {
	name   string
	labels string // rendered label suffix, "" when unlabeled
	help   string
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
	lh     *LogHistogram
}

// Registry holds named metrics. Registration is idempotent: asking for the
// same (name, labels) twice returns the same instrument, so engines and
// their exposition endpoint can share a registry freely. A nil *Registry
// is a valid "disabled" registry: every constructor returns nil
// instruments whose methods are no-ops.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	index   map[string]*metric
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*metric)}
}

func (r *Registry) lookup(name string, labels Labels, kind metricKind, help string) *metric {
	key := name + labels.render()
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.index[key]; ok {
		return m
	}
	m := &metric{name: name, labels: labels.render(), help: help, kind: kind}
	switch kind {
	case kindCounter:
		m.c = &Counter{}
	case kindGauge:
		m.g = &Gauge{}
	case kindLogHistogram:
		m.lh = NewLogHistogram()
	}
	r.metrics = append(r.metrics, m)
	r.index[key] = m
	return m
}

// Counter registers (or retrieves) a counter. Safe on nil (returns nil).
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, kindCounter, help).c
}

// Gauge registers (or retrieves) a gauge. Safe on nil (returns nil).
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, kindGauge, help).g
}

// Histogram registers (or retrieves) a fixed-bucket histogram. Safe on nil
// (returns nil). The bounds of the first registration win.
func (r *Registry) Histogram(name, help string, bounds []int64, labels Labels) *Histogram {
	if r == nil {
		return nil
	}
	m := r.lookup(name, labels, kindHistogram, help)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.h == nil {
		m.h = NewHistogram(bounds)
	}
	return m.h
}

// LogHistogram registers (or retrieves) a lock-free log-bucketed histogram
// with quantile exposition (Prometheus summary shape). Safe on nil
// (returns nil).
func (r *Registry) LogHistogram(name, help string, labels Labels) *LogHistogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, labels, kindLogHistogram, help).lh
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4). Safe on nil (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	seen := map[string]bool{}
	for _, m := range metrics {
		if !seen[m.name] {
			seen[m.name] = true
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind); err != nil {
				return err
			}
		}
		var err error
		switch m.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s%s %d\n", m.name, m.labels, m.c.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s%s %d\n", m.name, m.labels, m.g.Value())
		case kindHistogram:
			err = writePromHistogram(w, m)
		case kindLogHistogram:
			err = writePromLogHistogram(w, m)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, m *metric) error {
	s := m.h.Snapshot()
	cum := int64(0)
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, mergeLabel(m.labels, fmt.Sprintf(`le="%d"`, b)), cum); err != nil {
			return err
		}
	}
	cum += s.Inf
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, mergeLabel(m.labels, `le="+Inf"`), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", m.name, m.labels, s.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.name, m.labels, s.Count)
	return err
}

func writePromLogHistogram(w io.Writer, m *metric) error {
	s := m.lh.Snapshot()
	for _, q := range [...]struct {
		label string
		v     int64
	}{{`quantile="0.5"`, s.P50}, {`quantile="0.95"`, s.P95}, {`quantile="0.99"`, s.P99}} {
		if _, err := fmt.Fprintf(w, "%s%s %d\n", m.name, mergeLabel(m.labels, q.label), q.v); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_max%s %d\n", m.name, m.labels, s.Max); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", m.name, m.labels, s.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.name, m.labels, s.Count)
	return err
}

// mergeLabel splices an extra label pair into an already-rendered label
// set.
func mergeLabel(rendered, extra string) string {
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

// Snapshot is a point-in-time copy of a whole registry, keyed by
// name{labels}.
type Snapshot struct {
	Counters      map[string]int64                `json:"counters,omitempty"`
	Gauges        map[string]int64                `json:"gauges,omitempty"`
	Histograms    map[string]HistogramSnapshot    `json:"histograms,omitempty"`
	LogHistograms map[string]LogHistogramSnapshot `json:"log_histograms,omitempty"`
}

// Snapshot copies every metric's current value. Safe on nil (returns an
// empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:      map[string]int64{},
		Gauges:        map[string]int64{},
		Histograms:    map[string]HistogramSnapshot{},
		LogHistograms: map[string]LogHistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	for _, m := range metrics {
		key := m.name + m.labels
		switch m.kind {
		case kindCounter:
			s.Counters[key] = m.c.Value()
		case kindGauge:
			s.Gauges[key] = m.g.Value()
		case kindHistogram:
			s.Histograms[key] = m.h.Snapshot()
		case kindLogHistogram:
			s.LogHistograms[key] = m.lh.Snapshot()
		}
	}
	return s
}

// WriteJSON renders the snapshot as indented JSON. Safe on nil.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
