package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	if tr.Active() || tr.Wants(EvEmit) {
		t.Fatal("nil tracer reports active")
	}
	tr.Emit(Event{Kind: EvEmit}) // must not panic
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	var b strings.Builder
	tr := NewTracer(NewJSONLSink(&b))
	if !tr.Active() {
		t.Fatal("tracer with sink not active")
	}
	tr.Emit(Event{Kind: EvArrival, TS: 5, Stream: 1})
	tr.Emit(Event{Kind: EvEmit, TS: 5, Tuple: "[7 ftp]"})
	tr.Emit(Event{Kind: EvRetract, TS: 9, Tuple: "[7 ftp]"})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var events []Event
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	if events[0].Kind != EvArrival || events[0].Stream != 1 || events[0].Seq != 1 {
		t.Fatalf("event 0 = %+v", events[0])
	}
	if events[1].Kind != EvEmit || events[1].Tuple != "[7 ftp]" {
		t.Fatalf("event 1 = %+v", events[1])
	}
	if events[2].Kind != EvRetract || events[2].Seq != 3 {
		t.Fatalf("event 2 = %+v", events[2])
	}
}

func TestEventKindJSONNames(t *testing.T) {
	b, err := json.Marshal(EvWindowExpire)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"window_expire"` {
		t.Fatalf("marshal = %s", b)
	}
	var k EventKind
	if err := json.Unmarshal([]byte(`"lazy_pass"`), &k); err != nil || k != EvLazyPass {
		t.Fatalf("unmarshal = %v, %v", k, err)
	}
	if err := json.Unmarshal([]byte(`"bogus"`), &k); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestTracerOnly(t *testing.T) {
	ring := NewRingSink(8)
	tr := NewTracer(ring).Only(EvRetract)
	tr.Emit(Event{Kind: EvEmit})
	tr.Emit(Event{Kind: EvRetract})
	evs := ring.Events()
	if len(evs) != 1 || evs[0].Kind != EvRetract {
		t.Fatalf("filtered events = %+v", evs)
	}
}

func TestRingSinkWraps(t *testing.T) {
	ring := NewRingSink(3)
	for i := 1; i <= 5; i++ {
		ring.Emit(Event{TS: int64(i)})
	}
	evs := ring.Events()
	if len(evs) != 3 || evs[0].TS != 3 || evs[2].TS != 5 {
		t.Fatalf("ring events = %+v", evs)
	}
	if ring.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", ring.Dropped())
	}
}

func TestRingSinkConcurrent(t *testing.T) {
	ring := NewRingSink(16)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				ring.Emit(Event{Kind: EvEmit, TS: int64(id*1000 + j)})
				if j%50 == 0 {
					if evs := ring.Events(); len(evs) > 16 {
						t.Errorf("ring returned %d events, cap 16", len(evs))
					}
				}
			}
		}(i)
	}
	wg.Wait()
	evs := ring.Events()
	if len(evs) != 16 {
		t.Fatalf("ring holds %d events, want 16", len(evs))
	}
	if ring.Dropped() != 4*500-16 {
		t.Fatalf("dropped = %d, want %d", ring.Dropped(), 4*500-16)
	}
}

func TestServerCloseIdempotentAndReleasesPort(t *testing.T) {
	reg := NewRegistry()
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if err := srv.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// The port must be free for a new listener once Close returns.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("port %s not released after Close: %v", addr, err)
	}
	ln.Close()
}

func TestServeExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("upa_arrivals_total", "arrivals", nil).Add(9)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if out := get("/metrics"); !strings.Contains(out, "upa_arrivals_total 9") {
		t.Fatalf("/metrics = %q", out)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/metrics.json")), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["upa_arrivals_total"] != 9 {
		t.Fatalf("/metrics.json = %+v", snap)
	}
	if out := get("/debug/vars"); !strings.Contains(out, "upa_metrics") {
		t.Fatalf("/debug/vars missing registry: %q", out)
	}
	if out := get("/debug/pprof/"); !strings.Contains(out, "profile") {
		t.Fatalf("/debug/pprof/ = %q", out)
	}
}
