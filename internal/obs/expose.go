package obs

import (
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Page is one extra endpoint mounted on the exposition handler — e.g. the
// engine's /debug/plan introspection page. Handler is invoked per request;
// it must only read atomically-updated state when an engine is mid-run.
type Page struct {
	// Path is the mount path (e.g. "/debug/plan").
	Path string
	// Title is a short description shown on the index page.
	Title string
	// Handler serves the page.
	Handler http.HandlerFunc
}

// Handler serves the registry over HTTP:
//
//	/metrics        Prometheus text exposition format
//	/metrics.json   JSON snapshot of every metric
//	/debug/vars     expvar (includes the registry, published once)
//	/debug/pprof/*  runtime profiling
//
// Extra pages (e.g. /debug/plan) may be mounted alongside. The handler reads
// the registry with atomic loads only, so it is safe to scrape while an
// engine is mid-run.
func Handler(reg *Registry, pages ...Page) http.Handler {
	return HandlerFunc(func() *Registry { return reg }, pages...)
}

// HandlerFunc is Handler over a dynamic registry source — get is invoked
// per request, so a driver running engines sequentially (each with its own
// registry) can expose whichever run is currently in progress. get may
// return nil (served as an empty registry).
func HandlerFunc(get func() *Registry, pages ...Page) http.Handler {
	publishExpvar("upa_metrics", get)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Header().Set("Cache-Control", "no-cache")
		_ = get().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Header().Set("Cache-Control", "no-cache")
		_ = get().WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, p := range pages {
		mux.HandleFunc(p.Path, p.Handler)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "upa observability endpoint\n\n/metrics\n/metrics.json\n/debug/vars\n/debug/pprof/\n")
		for _, p := range pages {
			if p.Title != "" {
				fmt.Fprintf(w, "%s  (%s)\n", p.Path, p.Title)
			} else {
				fmt.Fprintln(w, p.Path)
			}
		}
	})
	return mux
}

var expvarMu sync.Mutex

// publishExpvar publishes the registry snapshot under name, tolerating
// repeated calls (expvar.Publish panics on duplicates).
func publishExpvar(name string, get func() *Registry) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return get().Snapshot() }))
}

// Server is a running exposition endpoint.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	once sync.Once
	err  error
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and releases the port. Idempotent: repeated
// calls return the first Close's error without touching the (already
// closed) server again.
func (s *Server) Close() error {
	s.once.Do(func() {
		s.err = s.srv.Close()
		// srv.Close only closes listeners Serve has already registered; if
		// Close races ahead of the background Serve goroutine the listener
		// would leak (and hold the port), so close it directly too.
		if err := s.ln.Close(); s.err == nil && err != nil && !errors.Is(err, net.ErrClosed) {
			s.err = err
		}
	})
	return s.err
}

// Serve binds addr (e.g. ":9090") and serves Handler(reg, pages...) in a
// background goroutine until Close.
func Serve(addr string, reg *Registry, pages ...Page) (*Server, error) {
	return ServeFunc(addr, func() *Registry { return reg }, pages...)
}

// ServeFunc is Serve over a dynamic registry source (see HandlerFunc).
func ServeFunc(addr string, get func() *Registry, pages ...Page) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: HandlerFunc(get, pages...), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}
