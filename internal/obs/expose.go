package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Handler serves the registry over HTTP:
//
//	/metrics        Prometheus text exposition format
//	/metrics.json   JSON snapshot of every metric
//	/debug/vars     expvar (includes the registry, published once)
//	/debug/pprof/*  runtime profiling
//
// The handler reads the registry with atomic loads only, so it is safe to
// scrape while an engine is mid-run.
func Handler(reg *Registry) http.Handler {
	return HandlerFunc(func() *Registry { return reg })
}

// HandlerFunc is Handler over a dynamic registry source — get is invoked
// per request, so a driver running engines sequentially (each with its own
// registry) can expose whichever run is currently in progress. get may
// return nil (served as an empty registry).
func HandlerFunc(get func() *Registry) http.Handler {
	publishExpvar("upa_metrics", get)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = get().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = get().WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "upa observability endpoint\n\n/metrics\n/metrics.json\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

var expvarMu sync.Mutex

// publishExpvar publishes the registry snapshot under name, tolerating
// repeated calls (expvar.Publish panics on duplicates).
func publishExpvar(name string, get func() *Registry) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return get().Snapshot() }))
}

// Server is a running exposition endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener.
func (s *Server) Close() error { return s.srv.Close() }

// Serve binds addr (e.g. ":9090") and serves Handler(reg) in a background
// goroutine until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	return ServeFunc(addr, func() *Registry { return reg })
}

// ServeFunc is Serve over a dynamic registry source (see HandlerFunc).
func ServeFunc(addr string, get func() *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: HandlerFunc(get), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}
