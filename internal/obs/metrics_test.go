package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatalf("nil counter value = %d", c.Value())
	}
	var g *Gauge
	g.Set(7)
	g.Add(1)
	g.SetMax(9)
	if g.Value() != 0 {
		t.Fatalf("nil gauge value = %d", g.Value())
	}
	var h *Histogram
	h.Observe(3)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram recorded")
	}
	var r *Registry
	if r.Counter("x", "", nil) != nil || r.Gauge("x", "", nil) != nil ||
		r.Histogram("x", "", nil, nil) != nil {
		t.Fatal("nil registry returned live instruments")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot non-empty")
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("upa_test_total", "help", nil)
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("upa_test_total", "help", nil); again != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("upa_test_gauge", "", nil)
	g.Set(10)
	g.SetMax(3) // lower: ignored
	g.SetMax(12)
	g.Add(-2)
	if g.Value() != 10 {
		t.Fatalf("gauge = %d, want 10", g.Value())
	}
}

func TestLabeledSeriesAreDistinct(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("upa_op_emitted_total", "", Labels{"op": "join", "node": "1"})
	b := r.Counter("upa_op_emitted_total", "", Labels{"op": "distinct", "node": "2"})
	if a == b {
		t.Fatal("different label sets shared a counter")
	}
	a.Add(2)
	b.Inc()
	snap := r.Snapshot()
	if snap.Counters[`upa_op_emitted_total{node="1",op="join"}`] != 2 {
		t.Fatalf("snapshot = %v", snap.Counters)
	}
	if snap.Counters[`upa_op_emitted_total{node="2",op="distinct"}`] != 1 {
		t.Fatalf("snapshot = %v", snap.Counters)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 500, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []int64{2, 1, 1} // <=10: {5,10}; (10,100]: {11}; (100,1000]: {500}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (snapshot %+v)", i, s.Counts[i], w, s)
		}
	}
	if s.Inf != 1 || s.Count != 5 || s.Sum != 5+10+11+500+5000 {
		t.Fatalf("snapshot %+v", s)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("upa_arrivals_total", "base-stream tuples pushed", nil).Add(42)
	r.Gauge("upa_state_tuples", "stored tuples", nil).Set(17)
	r.Counter("upa_op_emitted_total", "per-operator emissions", Labels{"op": "join"}).Add(3)
	r.Histogram("upa_push_nanos", "push latency", []int64{100, 1000}, nil).Observe(150)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP upa_arrivals_total base-stream tuples pushed",
		"# TYPE upa_arrivals_total counter",
		"upa_arrivals_total 42",
		"# TYPE upa_state_tuples gauge",
		"upa_state_tuples 17",
		`upa_op_emitted_total{op="join"} 3`,
		"# TYPE upa_push_nanos histogram",
		`upa_push_nanos_bucket{le="100"} 0`,
		`upa_push_nanos_bucket{le="1000"} 1`,
		`upa_push_nanos_bucket{le="+Inf"} 1`,
		"upa_push_nanos_sum 150",
		"upa_push_nanos_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("upa_test_total", "", Labels{"pred": "proto=\"ftp\"\nand src\\dst"}).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	// Exactly backslash, double quote, and newline must be escaped; the raw
	// newline must not survive inside the quoted value.
	want := `upa_test_total{pred="proto=\"ftp\"\nand src\\dst"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("prometheus output missing %q:\n%s", want, b.String())
	}
	for _, fn := range []string{
		`upa_test_total{pred="proto="ftp""`, // unescaped quote
		"pred=\"proto=\\\"ftp\\\"\n",        // raw newline in value
	} {
		if strings.Contains(b.String(), fn) {
			t.Fatalf("prometheus output contains unescaped form %q:\n%s", fn, b.String())
		}
	}
	if got := escapeLabelValue("plain"); got != "plain" {
		t.Fatalf("escapeLabelValue(plain) = %q", got)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("upa_shared_total", "", nil).Inc()
				r.Gauge("upa_shared_gauge", "", nil).SetMax(int64(j))
				r.Histogram("upa_shared_hist", "", []int64{10}, nil).Observe(int64(j % 20))
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("upa_shared_total", "", nil).Value(); v != 8000 {
		t.Fatalf("counter = %d, want 8000", v)
	}
	if h := r.Histogram("upa_shared_hist", "", []int64{10}, nil); h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}
