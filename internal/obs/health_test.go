package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

// newTestHealth wires a manual-tick monitor over a fresh registry.
func newTestHealth(rules ...Rule) (*Registry, *Health) {
	reg := NewRegistry()
	hist := NewHistory(reg, HistoryConfig{Capacity: 32})
	return reg, NewHealth(hist, rules...)
}

func TestHealthEscalationNeedsForTicks(t *testing.T) {
	reg, h := newTestHealth(Rule{
		Name:   "errs",
		Signal: Signal{Series: "errs", Source: SourceDelta, Window: 4},
		Warn:   math.NaN(), Crit: 0, // any windowed error is CRIT
		ForTicks: 2, HoldTicks: 2,
	})
	var got []Transition
	h.AddSink(AlertFunc(func(tr Transition) { got = append(got, tr) }))

	c := reg.Counter("errs", "", nil)
	h.Tick() // baseline
	if h.Overall() != SevOK {
		t.Fatalf("baseline severity = %v, want OK", h.Overall())
	}
	c.Inc()
	h.Tick() // first breaching tick: pending only
	if h.Overall() != SevOK || len(got) != 0 {
		t.Fatalf("after 1 breaching tick: severity %v transitions %d, want OK/0", h.Overall(), len(got))
	}
	h.Tick() // second consecutive breach (delta still in the 4-tick window)
	if h.Overall() != SevCrit {
		t.Fatalf("after 2 breaching ticks: severity = %v, want CRIT", h.Overall())
	}
	if len(got) != 1 || got[0].From != SevOK || got[0].To != SevCrit {
		t.Fatalf("transitions = %+v, want one OK->CRIT", got)
	}

	// Drain: once the delta leaves the window the raw state clears, and
	// HoldTicks consecutive clear ticks de-escalate.
	for i := 0; i < 6 && h.Overall() != SevOK; i++ {
		h.Tick()
	}
	if h.Overall() != SevOK {
		t.Fatalf("rule never recovered: severity = %v", h.Overall())
	}
	last := got[len(got)-1]
	if last.From != SevCrit || last.To != SevOK {
		t.Fatalf("recovery transition = %+v, want CRIT->OK", last)
	}

	// Self-exposition: the severity gauge and transition counter track the
	// state machine.
	snap := reg.Snapshot()
	sevKey := MetricHealthSeverity + `{rule="errs"}`
	transKey := MetricHealthTransitions + `{rule="errs"}`
	if v, ok := snap.Gauges[sevKey]; !ok || v != int64(SevOK) {
		t.Errorf("severity gauge %s = %d (present %v), want %d", sevKey, v, ok, int64(SevOK))
	}
	if v, ok := snap.Counters[transKey]; !ok || v != 2 {
		t.Errorf("transition counter %s = %d (present %v), want 2", transKey, v, ok)
	}
}

// TestHealthFlapSuppression alternates breach and clear every tick; with
// ForTicks 2 the pending escalation resets each time and no transition ever
// fires.
func TestHealthFlapSuppression(t *testing.T) {
	reg, h := newTestHealth(Rule{
		Name:   "flappy",
		Signal: Signal{Series: "errs", Source: SourceDelta, Window: 1},
		Warn:   math.NaN(), Crit: 0,
		ForTicks: 2, HoldTicks: 2,
	})
	fired := 0
	h.AddSink(AlertFunc(func(Transition) { fired++ }))
	c := reg.Counter("errs", "", nil)
	h.Tick() // baseline
	for i := 0; i < 10; i++ {
		c.Inc()
		h.Tick() // breach (pending 1 of 2)
		h.Tick() // clear — resets the pending escalation
	}
	if fired != 0 || h.Overall() != SevOK {
		t.Errorf("flapping signal fired %d transitions, severity %v; want 0/OK", fired, h.Overall())
	}
}

func TestHealthWarnThenCritAndBelow(t *testing.T) {
	reg, h := newTestHealth(
		Rule{
			Name:   "depth",
			Signal: Signal{Series: "depth", Source: SourceValue, Agg: AggMax},
			Warn:   5, Crit: 10,
			ForTicks: 1, HoldTicks: 1,
		},
		Rule{
			Name:   "floor",
			Signal: Signal{Series: "depth", Source: SourceValue, Agg: AggMax},
			Warn:   math.NaN(), Crit: 2, Below: true,
			ForTicks: 1, HoldTicks: 1,
		},
	)
	g := reg.Gauge("depth", "", nil)
	g.Set(7)
	h.Tick()
	st := h.Status()
	if st.Rules[0].Severity != SevWarn {
		t.Errorf("depth at 7: severity %v, want WARN", st.Rules[0].Severity)
	}
	if st.Rules[1].Severity != SevOK {
		t.Errorf("floor at 7: severity %v, want OK", st.Rules[1].Severity)
	}
	g.Set(11)
	h.Tick()
	if st = h.Status(); st.Rules[0].Severity != SevCrit {
		t.Errorf("depth at 11: severity %v, want CRIT", st.Rules[0].Severity)
	}
	g.Set(1)
	h.Tick()
	if st = h.Status(); st.Rules[1].Severity != SevCrit {
		t.Errorf("floor at 1 (Below): severity %v, want CRIT", st.Rules[1].Severity)
	}
}

func TestHealthUnmatchedSeriesStaysOK(t *testing.T) {
	_, h := newTestHealth(Rule{
		Name:   "ghost",
		Signal: Signal{Series: "never_registered", Source: SourceValue},
		Warn:   math.NaN(), Crit: 0,
		ForTicks: 1, HoldTicks: 1,
	})
	h.Tick()
	h.Tick()
	st := h.Status()
	if st.Overall != SevOK || st.Rules[0].Matched {
		t.Errorf("unmatched rule: overall %v matched %v, want OK/false", st.Overall, st.Rules[0].Matched)
	}
	var buf bytes.Buffer
	st.WriteText(&buf)
	if !strings.Contains(buf.String(), "(no series)") {
		t.Errorf("WriteText missing the (no series) note:\n%s", buf.String())
	}
}

func TestHealthSignalMinusAndAgg(t *testing.T) {
	reg, h := newTestHealth(Rule{
		Name: "lag",
		Signal: Signal{
			Series: "clock", Source: SourceValue, Agg: AggMax,
			Minus: &Signal{Series: "wm", Source: SourceValue, Agg: AggMin},
		},
		Warn: math.NaN(), Crit: 50,
		ForTicks: 1, HoldTicks: 1,
	})
	reg.Gauge("clock", "", Labels{"shard": "0"}).Set(100)
	reg.Gauge("clock", "", Labels{"shard": "1"}).Set(120)
	reg.Gauge("wm", "", Labels{"shard": "0"}).Set(90)
	reg.Gauge("wm", "", Labels{"shard": "1"}).Set(110)
	h.Tick()
	st := h.Status()
	// max(clock)=120, min(wm)=90 → lag 30.
	if st.Rules[0].Value != 30 {
		t.Errorf("lag value = %g, want 30", st.Rules[0].Value)
	}
	if st.Rules[0].Severity != SevOK {
		t.Errorf("lag severity = %v, want OK", st.Rules[0].Severity)
	}
}

func TestHealthQuantileSignalMergesSeries(t *testing.T) {
	reg, h := newTestHealth(Rule{
		Name: "p99",
		Signal: Signal{
			Series: "lat", Match: Labels{"polarity": "pos"},
			Source: SourceQuantile, Window: 4, Q: 0.99,
		},
		Warn: math.NaN(), Crit: 1 << 20,
		ForTicks: 1, HoldTicks: 1,
	})
	pos := reg.LogHistogram("lat", "", Labels{"polarity": "pos", "shard": "0"})
	pos2 := reg.LogHistogram("lat", "", Labels{"polarity": "pos", "shard": "1"})
	neg := reg.LogHistogram("lat", "", Labels{"polarity": "neg", "shard": "0"})
	h.Tick() // baseline
	pos.ObserveN(100, 10)
	pos2.ObserveN(1<<24, 10) // the tail lives entirely in another label set
	neg.ObserveN(1<<30, 50)
	h.Tick()
	st := h.Status()
	// The p99 of the merged pos-series window must see shard 1's tail…
	if st.Rules[0].Value < float64(int64(1)<<23) {
		t.Errorf("p99 = %g, want the cross-series tail (>= 2^23)", st.Rules[0].Value)
	}
	// …but not the neg polarity's 2^30 observations.
	if st.Rules[0].Value > float64(int64(1)<<29) {
		t.Errorf("p99 = %g leaked the neg-polarity series", st.Rules[0].Value)
	}
	if st.Rules[0].Severity != SevCrit {
		t.Errorf("severity = %v, want CRIT (tail above 2^20)", st.Rules[0].Severity)
	}
}

func TestHealthStatusJSONWithNaNThresholds(t *testing.T) {
	reg, h := newTestHealth(Rule{
		Name:   "r",
		Signal: Signal{Series: "g", Source: SourceValue},
		Warn:   math.NaN(), Crit: 10,
		ForTicks: 1, HoldTicks: 1,
	})
	reg.Gauge("g", "", nil).Set(3)
	h.Tick()
	data, err := json.Marshal(h.Status())
	if err != nil {
		t.Fatalf("Status with NaN warn threshold failed to marshal: %v", err)
	}
	if strings.Contains(string(data), `"warn"`) {
		t.Errorf("disabled warn threshold leaked into JSON: %s", data)
	}
	if !strings.Contains(string(data), `"crit":10`) {
		t.Errorf("crit threshold missing from JSON: %s", data)
	}
}

func TestHealthNilSafe(t *testing.T) {
	var h *Health
	h.AddSink(AlertFunc(func(Transition) {}))
	h.Start()
	h.Stop()
	h.Tick()
	if h.Overall() != SevOK || h.History() != nil {
		t.Error("nil Health must report OK with no history")
	}
	st := h.Status()
	if len(st.Rules) != 0 {
		t.Error("nil Health must report no rules")
	}
}

func TestLogAlertSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewLogAlertSink(&buf)
	s.Alert(Transition{Rule: "r", From: SevOK, To: SevCrit, Value: 42, WallNanos: 0})
	line := buf.String()
	if !strings.HasPrefix(line, "health: r OK -> CRIT (value 42)") {
		t.Errorf("log line = %q", line)
	}
}

func TestTracerAlertSink(t *testing.T) {
	ring := NewRingSink(8)
	tr := NewTracer(ring)
	s := TracerAlertSink{T: tr}
	s.Alert(Transition{Rule: "r", From: SevWarn, To: SevCrit, Value: 7, WallNanos: 123})
	evs := ring.Events()
	if len(evs) != 1 {
		t.Fatalf("traced %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Kind != EvAlert || ev.Node != "r" || ev.Tuple != "WARN->CRIT" || ev.N != int(SevCrit) || ev.Nanos != 7 {
		t.Errorf("event = %+v", ev)
	}
	TracerAlertSink{}.Alert(Transition{}) // nil tracer is a no-op
}

func TestHealthPage(t *testing.T) {
	reg, h := newTestHealth(Rule{
		Name: "depth", Help: "queue depth",
		Signal: Signal{Series: "depth", Source: SourceValue},
		Warn:   math.NaN(), Crit: 10,
		ForTicks: 1, HoldTicks: 1,
	})
	g := reg.Gauge("depth", "", nil)
	g.Set(1)
	h.Tick()
	page := HealthPage(h)

	get := func(url string, hdr map[string]string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("GET", url, nil)
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		page.Handler.ServeHTTP(rec, req)
		return rec
	}

	rec := get("/debug/health", nil)
	if rec.Code != 200 {
		t.Fatalf("OK status = %d, want 200", rec.Code)
	}
	if cc := rec.Header().Get("Cache-Control"); cc != "no-cache" {
		t.Errorf("Cache-Control = %q, want no-cache", cc)
	}
	var st HealthStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("health body not JSON: %v", err)
	}
	if st.Overall != SevOK || len(st.Rules) != 1 {
		t.Errorf("status = %+v, want OK with one rule", st)
	}

	rec = get("/debug/health?format=html", nil)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("html Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "depth") {
		t.Error("html body missing the rule name")
	}
	rec = get("/debug/health", map[string]string{"Accept": "text/html,application/xhtml+xml"})
	if !strings.Contains(rec.Header().Get("Content-Type"), "text/html") {
		t.Error("Accept: text/html not honored")
	}

	// Trip the rule: a CRIT overall must answer 503 so CI and load
	// balancers can gate on the status code alone.
	g.Set(11)
	h.Tick()
	rec = get("/debug/health", nil)
	if rec.Code != 503 {
		t.Errorf("CRIT status = %d, want 503", rec.Code)
	}

	nilRec := httptest.NewRecorder()
	HealthPage(nil).Handler.ServeHTTP(nilRec, httptest.NewRequest("GET", "/debug/health", nil))
	if nilRec.Code != 503 || !strings.Contains(nilRec.Body.String(), "disabled") {
		t.Errorf("nil monitor: status %d body %q, want 503/disabled", nilRec.Code, nilRec.Body.String())
	}
}
