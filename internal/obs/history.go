package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// History periodically snapshots a Registry into fixed-size per-series
// ring buffers, giving the process an in-memory answer to "what did this
// series do over the last N ticks" without an external TSDB.
//
// Storage per sample tick:
//   - counters and fixed histograms store the tick-over-tick *delta*, so
//     rates and windowed sums come free (the cumulative value stays
//     available as the running baseline);
//   - gauges store the sampled value;
//   - log histograms store a bucket-wise delta snapshot, so an exact
//     windowed distribution — and therefore exact windowed p50/p95/p99 —
//     is a Merge of the window's deltas (quantiles cannot be averaged;
//     bucket counts can).
//
// Sampling is lock-light: instruments are atomics, so a tick reads each
// series once without stopping recorders; History's own mutex only orders
// ticks against readers of the rings. All methods are safe on nil.
type History struct {
	reg *Registry
	cfg HistoryConfig

	mu    sync.Mutex
	rings map[string]*seriesRing
	order []*seriesRing // registration order, for stable listings
	times []sampleStamp // ring of per-tick timestamps
	count int64         // total ticks taken since construction

	before []func() // run before reading the registry (refresh derived gauges)
	after  []func() // run after the tick is stored (health evaluation)

	startMu sync.Mutex
	stop    chan struct{}
	done    chan struct{}
}

// HistoryConfig sizes a History.
type HistoryConfig struct {
	// Capacity is the number of sample ticks retained per series
	// (default 600 — ten minutes at the default interval).
	Capacity int
	// Interval is Start's sampling cadence (default 1s).
	Interval time.Duration
}

const (
	defaultHistoryCapacity = 600
	defaultHistoryInterval = time.Second
)

type sampleStamp struct {
	wall int64 // time.Now().UnixNano()
	mono int64 // Nanotime()
}

// seriesRing is one series' retained window. vals and hists are rings
// indexed by tick%capacity; slots before the series' first tick are zero.
type seriesRing struct {
	name   string
	labels string // rendered label suffix, "" when unlabeled
	kind   metricKind
	m      *metric

	first int64   // global tick index of this series' first sample
	vals  []int64 // counter/histogram deltas, gauge values
	hists []LogHistogramSnapshot
	prev  int64                // last cumulative count (counters, histograms)
	prevH LogHistogramSnapshot // last cumulative snapshot (log histograms)
}

// NewHistory builds a sampler over reg. The first tick of each series is a
// baseline (delta 0), so attaching a History to a long-running registry
// does not report the entire cumulative history as one spike.
func NewHistory(reg *Registry, cfg HistoryConfig) *History {
	if cfg.Capacity <= 0 {
		cfg.Capacity = defaultHistoryCapacity
	}
	if cfg.Interval <= 0 {
		cfg.Interval = defaultHistoryInterval
	}
	return &History{
		reg:   reg,
		cfg:   cfg,
		rings: make(map[string]*seriesRing),
		times: make([]sampleStamp, cfg.Capacity),
	}
}

// Registry returns the registry this history samples. Safe on nil.
func (h *History) Registry() *Registry {
	if h == nil {
		return nil
	}
	return h.reg
}

// Interval returns the configured sampling cadence. Safe on nil.
func (h *History) Interval() time.Duration {
	if h == nil {
		return 0
	}
	return h.cfg.Interval
}

// BeforeSample registers fn to run at the start of every tick, before the
// registry is read — the hook point for refreshing derived gauges
// (process metrics, state sizes). Safe on nil.
func (h *History) BeforeSample(fn func()) {
	if h == nil || fn == nil {
		return
	}
	h.mu.Lock()
	h.before = append(h.before, fn)
	h.mu.Unlock()
}

// AfterSample registers fn to run after every tick is stored — the hook
// point for rule evaluation over the fresh window. Safe on nil.
func (h *History) AfterSample(fn func()) {
	if h == nil || fn == nil {
		return
	}
	h.mu.Lock()
	h.after = append(h.after, fn)
	h.mu.Unlock()
}

// Sample takes one tick now. It is the manual alternative to Start for
// tests and CLIs that want a deterministic final tick. Safe on nil.
func (h *History) Sample() {
	if h == nil || h.reg == nil {
		return
	}
	h.sampleAt(time.Now().UnixNano(), Nanotime())
}

func (h *History) sampleAt(wall, mono int64) {
	h.mu.Lock()
	before := h.before
	after := h.after
	h.mu.Unlock()
	for _, fn := range before {
		fn()
	}

	h.reg.mu.Lock()
	metrics := append([]*metric(nil), h.reg.metrics...)
	h.reg.mu.Unlock()

	h.mu.Lock()
	slot := int(h.count % int64(h.cfg.Capacity))
	h.times[slot] = sampleStamp{wall: wall, mono: mono}
	for _, m := range metrics {
		key := m.name + m.labels
		r, ok := h.rings[key]
		if !ok {
			r = &seriesRing{
				name:   m.name,
				labels: m.labels,
				kind:   m.kind,
				m:      m,
				first:  h.count,
				vals:   make([]int64, h.cfg.Capacity),
			}
			if m.kind == kindLogHistogram {
				r.hists = make([]LogHistogramSnapshot, h.cfg.Capacity)
			}
			h.rings[key] = r
			h.order = append(h.order, r)
			// Baseline tick: record delta 0 so a late-attached sampler does
			// not report the whole cumulative history as one spike.
			switch m.kind {
			case kindCounter:
				r.prev = m.c.Value()
			case kindHistogram:
				r.prev = m.h.Count()
			case kindLogHistogram:
				r.prevH = m.lh.Snapshot()
				r.prev = r.prevH.Count
			}
		}
		switch m.kind {
		case kindCounter:
			cur := m.c.Value()
			r.vals[slot] = cur - r.prev
			r.prev = cur
		case kindGauge:
			r.vals[slot] = m.g.Value()
		case kindHistogram:
			cur := m.h.Count()
			r.vals[slot] = cur - r.prev
			r.prev = cur
		case kindLogHistogram:
			cur := m.lh.Snapshot()
			d := diffLogSnapshots(cur, r.prevH)
			r.hists[slot] = d
			r.vals[slot] = d.Count
			r.prevH = cur
			r.prev = cur.Count
		}
	}
	h.count++
	h.mu.Unlock()

	for _, fn := range after {
		fn()
	}
}

// diffLogSnapshots returns the distribution observed between prev and cur
// (bucket-wise subtraction). Max is inherited from cur — an upper bound
// for the interval, exact whenever the interval contains the running max.
func diffLogSnapshots(cur, prev LogHistogramSnapshot) LogHistogramSnapshot {
	d := LogHistogramSnapshot{
		Count: cur.Count - prev.Count,
		Sum:   cur.Sum - prev.Sum,
	}
	if d.Count <= 0 {
		d.Count = 0
		d.Sum = 0
		return d
	}
	d.Max = cur.Max
	var counts [logBuckets]int64
	for i, c := range cur.Buckets {
		if i >= 0 && i < logBuckets {
			counts[i] = c
		}
	}
	for i, c := range prev.Buckets {
		if i >= 0 && i < logBuckets {
			counts[i] -= c
		}
	}
	d.Buckets = make(map[int]int64)
	total := int64(0)
	for i, c := range counts {
		if c > 0 {
			d.Buckets[i] = c
			total += c
		}
	}
	d.P50 = quantileFromBuckets(counts[:], total, 0.50)
	d.P95 = quantileFromBuckets(counts[:], total, 0.95)
	d.P99 = quantileFromBuckets(counts[:], total, 0.99)
	for _, p := range []*int64{&d.P50, &d.P95, &d.P99} {
		if *p > d.Max {
			*p = d.Max
		}
	}
	return d
}

// Start launches the sampling goroutine at the configured interval.
// Idempotent; Stop shuts it down. Safe on nil.
func (h *History) Start() {
	if h == nil || h.reg == nil {
		return
	}
	h.startMu.Lock()
	defer h.startMu.Unlock()
	if h.stop != nil {
		return
	}
	h.stop = make(chan struct{})
	h.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(h.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				h.Sample()
			}
		}
	}(h.stop, h.done)
}

// Stop halts the sampling goroutine and waits for it to exit. Idempotent;
// manual Sample calls remain valid afterwards. Safe on nil.
func (h *History) Stop() {
	if h == nil {
		return
	}
	h.startMu.Lock()
	defer h.startMu.Unlock()
	if h.stop == nil {
		return
	}
	close(h.stop)
	<-h.done
	h.stop = nil
	h.done = nil
}

// Samples returns the total number of ticks taken. Safe on nil.
func (h *History) Samples() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// retainedLocked returns how many ticks are currently held in the rings.
func (h *History) retainedLocked() int {
	if h.count < int64(h.cfg.Capacity) {
		return int(h.count)
	}
	return h.cfg.Capacity
}

// SeriesKey identifies one retained series.
type SeriesKey struct {
	Key  string `json:"key"`  // name + rendered labels
	Kind string `json:"kind"` // counter | gauge | histogram | summary
}

// Series lists every retained series in registration order. Safe on nil.
func (h *History) Series() []SeriesKey {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]SeriesKey, 0, len(h.order))
	for _, r := range h.order {
		out = append(out, SeriesKey{Key: r.name + r.labels, Kind: r.kind.String()})
	}
	return out
}

// SeriesWindow is the retained window of one series, oldest tick first.
type SeriesWindow struct {
	Key  string `json:"key"`
	Kind string `json:"kind"`
	// WallNanos stamps each retained tick (UnixNano).
	WallNanos []int64 `json:"wall_nanos"`
	// Values holds per-tick deltas for counters/histograms and sampled
	// values for gauges; for log histograms it holds per-tick observation
	// counts.
	Values []int64 `json:"values"`
	// Cumulative is the series' running total as of the newest tick
	// (counters, histograms, log-histogram counts); latest value for
	// gauges.
	Cumulative int64 `json:"cumulative"`
	// Quantiles is the Merge of the window's bucket-wise deltas — the
	// exact distribution observed across the window (log histograms only).
	Quantiles *LogHistogramSnapshot `json:"quantiles,omitempty"`
}

// Window returns up to n most recent ticks for every series whose key
// equals key or whose metric name equals key (so a bare name fans out to
// all label sets). n <= 0 means the full retained window. Safe on nil.
func (h *History) Window(key string, n int) []SeriesWindow {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	avail := h.retainedLocked()
	if n <= 0 || n > avail {
		n = avail
	}
	var out []SeriesWindow
	for _, r := range h.order {
		if r.name+r.labels != key && r.name != key {
			continue
		}
		w := SeriesWindow{
			Key:        r.name + r.labels,
			Kind:       r.kind.String(),
			WallNanos:  make([]int64, 0, n),
			Values:     make([]int64, 0, n),
			Cumulative: r.prev,
		}
		if r.kind == kindGauge {
			w.Cumulative = h.latestLocked(r)
		}
		var merged LogHistogramSnapshot
		for i := h.count - int64(n); i < h.count; i++ {
			slot := int(i % int64(h.cfg.Capacity))
			w.WallNanos = append(w.WallNanos, h.times[slot].wall)
			w.Values = append(w.Values, r.vals[slot])
			if r.hists != nil {
				merged = merged.Merge(r.hists[slot])
			}
		}
		if r.hists != nil {
			w.Quantiles = &merged
		}
		out = append(out, w)
	}
	return out
}

// latestLocked returns the series' newest stored value (gauges) or 0 when
// no tick has been taken yet.
func (h *History) latestLocked(r *seriesRing) int64 {
	if h.count == 0 {
		return 0
	}
	return r.vals[int((h.count-1)%int64(h.cfg.Capacity))]
}

// windowSumLocked sums the last n stored values of r (deltas for
// counters/histograms).
func (h *History) windowSumLocked(r *seriesRing, n int) int64 {
	avail := h.retainedLocked()
	if n <= 0 || n > avail {
		n = avail
	}
	sum := int64(0)
	for i := h.count - int64(n); i < h.count; i++ {
		sum += r.vals[int(i%int64(h.cfg.Capacity))]
	}
	return sum
}

// windowElapsedLocked returns the monotonic nanoseconds covered by the
// last n deltas: newest stamp minus the stamp n ticks back (clamped to
// the retained range).
func (h *History) windowElapsedLocked(n int) int64 {
	if h.count < 2 {
		return 0
	}
	avail := h.retainedLocked()
	if n <= 0 || n > avail-1 {
		n = avail - 1
	}
	if n <= 0 {
		return 0
	}
	newest := h.times[int((h.count-1)%int64(h.cfg.Capacity))].mono
	oldest := h.times[int((h.count-1-int64(n))%int64(h.cfg.Capacity))].mono
	if newest <= oldest {
		return 0
	}
	return newest - oldest
}

// windowHistLocked merges the last n bucket-wise deltas of a log-histogram
// series into one distribution.
func (h *History) windowHistLocked(r *seriesRing, n int) LogHistogramSnapshot {
	var merged LogHistogramSnapshot
	if r.hists == nil {
		return merged
	}
	avail := h.retainedLocked()
	if n <= 0 || n > avail {
		n = avail
	}
	for i := h.count - int64(n); i < h.count; i++ {
		merged = merged.Merge(r.hists[int(i%int64(h.cfg.Capacity))])
	}
	return merged
}

// matchRingsLocked returns every ring with metric name `name` whose
// rendered labels contain each pair in match. Label rendering is
// deterministic and escaped, so substring matching on `k="v"` pairs is a
// sound subset test.
func (h *History) matchRingsLocked(name string, match Labels) []*seriesRing {
	var needles []string
	for k, v := range match {
		needles = append(needles, k+`="`+escapeLabelValue(v)+`"`)
	}
	var out []*seriesRing
	for _, r := range h.order {
		if r.name != name {
			continue
		}
		ok := true
		for _, nd := range needles {
			if !strings.Contains(r.labels, nd) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, r)
		}
	}
	return out
}

// HistoryPage serves the retained windows as JSON:
//
//	/debug/history                 — series listing + tick count
//	/debug/history?series=NAME     — windows for NAME (all label sets)
//	/debug/history?series=K&n=30   — last 30 ticks only
func HistoryPage(h *History) Page {
	return Page{
		Path:  "/debug/history",
		Title: "metrics history (ring-buffer windows; ?series=NAME&n=TICKS)",
		Handler: http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.Header().Set("Cache-Control", "no-cache")
			if h == nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				io.WriteString(w, `{"error":"history sampling disabled"}`+"\n")
				return
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			series := req.URL.Query().Get("series")
			if series == "" {
				keys := h.Series()
				sort.Slice(keys, func(i, j int) bool { return keys[i].Key < keys[j].Key })
				enc.Encode(struct {
					Samples int64       `json:"samples"`
					Series  []SeriesKey `json:"series"`
				}{h.Samples(), keys})
				return
			}
			n, _ := strconv.Atoi(req.URL.Query().Get("n"))
			windows := h.Window(series, n)
			if len(windows) == 0 {
				w.WriteHeader(http.StatusNotFound)
				enc.Encode(struct {
					Error string `json:"error"`
				}{"no such series: " + series})
				return
			}
			enc.Encode(windows)
		}),
	}
}
