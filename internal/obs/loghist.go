package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// nanotimeBase anchors Nanotime: readings are durations since process
// start, so they fit comfortably in an int64 and difference cleanly.
var nanotimeBase = time.Now()

// Nanotime returns a monotonic reading in nanoseconds since process start.
// time.Since uses the runtime's monotonic clock, so readings never jump
// backwards across wall-clock adjustments — the property delta-latency
// origins need.
func Nanotime() int64 { return int64(time.Since(nanotimeBase)) }

// logBuckets is the number of power-of-two buckets in a LogHistogram:
// bucket i counts observations v with bits.Len64(v) == i, i.e. v in
// [2^(i-1), 2^i). 64 buckets cover every non-negative int64.
const logBuckets = 65

// LogHistogram is a lock-free log-bucketed histogram: values land in
// power-of-two buckets chosen by bit length, so Observe is one bits.Len64
// plus three atomic adds and one CAS loop — cheap enough for per-delta
// latency recording on the hot path. Relative quantile error is bounded by
// the bucket ratio (a factor of 2; reported values interpolate within the
// bucket). Safe for concurrent recorders and snapshot readers; methods on
// a nil *LogHistogram are no-ops.
type LogHistogram struct {
	counts [logBuckets]atomic.Int64
	sum    atomic.Int64
	n      atomic.Int64
	max    atomic.Int64
}

// NewLogHistogram builds a standalone log-bucketed histogram.
func NewLogHistogram() *LogHistogram { return &LogHistogram{} }

// Observe records one value (negative values clamp to zero). Safe on nil.
func (h *LogHistogram) Observe(v int64) { h.ObserveN(v, 1) }

// ObserveN records n observations of the same value v — the batch path's
// way to charge one latency reading to every delta it covered without n
// separate atomic rounds. n <= 0 is ignored. Safe on nil.
func (h *LogHistogram) ObserveN(v int64, n int64) {
	if h == nil || n <= 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[bits.Len64(uint64(v))].Add(n)
	h.sum.Add(v * n)
	h.n.Add(n)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations. Safe on nil.
func (h *LogHistogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of observed values. Safe on nil.
func (h *LogHistogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest observed value. Safe on nil.
func (h *LogHistogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// LogHistogramSnapshot is a point-in-time copy of a LogHistogram with
// pre-computed quantiles. Quantiles are upper-bound estimates accurate to
// the bucket (linear interpolation inside the winning power-of-two bucket).
type LogHistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P95   int64 `json:"p95"`
	P99   int64 `json:"p99"`
	// Buckets maps bit length -> observation count, omitting empty buckets.
	Buckets map[int]int64 `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state and derives p50/p95/p99.
// Concurrent recorders may land between bucket reads; the snapshot is a
// consistent-enough mid-run approximation, like /metrics. Safe on nil.
func (h *LogHistogram) Snapshot() LogHistogramSnapshot {
	if h == nil {
		return LogHistogramSnapshot{}
	}
	var counts [logBuckets]int64
	total := int64(0)
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	s := LogHistogramSnapshot{
		Count: total,
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	if total == 0 {
		return s
	}
	s.Buckets = make(map[int]int64)
	for i, c := range counts {
		if c > 0 {
			s.Buckets[i] = c
		}
	}
	s.P50 = quantileFromBuckets(counts[:], total, 0.50)
	s.P95 = quantileFromBuckets(counts[:], total, 0.95)
	s.P99 = quantileFromBuckets(counts[:], total, 0.99)
	if s.P50 > s.Max {
		s.P50 = s.Max
	}
	if s.P95 > s.Max {
		s.P95 = s.Max
	}
	if s.P99 > s.Max {
		s.P99 = s.Max
	}
	return s
}

// Quantile estimates an arbitrary q-quantile (0 < q <= 1) from the
// snapshot's buckets, clamped to the observed max — the general form of
// the pre-computed P50/P95/P99, used by health rules with custom SLO
// quantiles.
func (s LogHistogramSnapshot) Quantile(q float64) int64 {
	if s.Count <= 0 || len(s.Buckets) == 0 {
		return 0
	}
	var counts [logBuckets]int64
	total := int64(0)
	for i, c := range s.Buckets {
		if i >= 0 && i < logBuckets {
			counts[i] += c
			total += c
		}
	}
	if total == 0 {
		return 0
	}
	v := quantileFromBuckets(counts[:], total, q)
	if s.Max > 0 && v > s.Max {
		v = s.Max
	}
	return v
}

// Merge combines two snapshots bucket-wise and recomputes the quantiles —
// how sharded execution folds per-shard latency distributions into one
// (quantiles themselves cannot be averaged; bucket counts can).
func (s LogHistogramSnapshot) Merge(o LogHistogramSnapshot) LogHistogramSnapshot {
	var counts [logBuckets]int64
	for i, c := range s.Buckets {
		if i >= 0 && i < logBuckets {
			counts[i] += c
		}
	}
	for i, c := range o.Buckets {
		if i >= 0 && i < logBuckets {
			counts[i] += c
		}
	}
	out := LogHistogramSnapshot{
		Count: s.Count + o.Count,
		Sum:   s.Sum + o.Sum,
		Max:   s.Max,
	}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	total := int64(0)
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return out
	}
	out.Buckets = make(map[int]int64)
	for i, c := range counts {
		if c > 0 {
			out.Buckets[i] = c
		}
	}
	out.P50 = quantileFromBuckets(counts[:], total, 0.50)
	out.P95 = quantileFromBuckets(counts[:], total, 0.95)
	out.P99 = quantileFromBuckets(counts[:], total, 0.99)
	for _, p := range []*int64{&out.P50, &out.P95, &out.P99} {
		if *p > out.Max {
			*p = out.Max
		}
	}
	return out
}

// quantileFromBuckets estimates the q-quantile by walking the cumulative
// bucket counts and interpolating linearly within the winning bucket
// [2^(i-1), 2^i).
func quantileFromBuckets(counts []int64, total int64, q float64) int64 {
	rank := int64(float64(total) * q)
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo, hi := bucketBounds(i)
			// Position of the target rank within this bucket, in (0, 1].
			frac := float64(rank-cum) / float64(c)
			return lo + int64(frac*float64(hi-lo))
		}
		cum += c
	}
	// Unreachable when total matches the counts; fall back to the top bound.
	lo, hi := bucketBounds(len(counts) - 1)
	_ = lo
	return hi
}

// bucketBounds returns the value range [lo, hi) covered by bucket i
// (bit length i): bucket 0 holds only zero, bucket i>=1 holds
// [2^(i-1), 2^i).
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 1
	}
	lo = int64(1) << (i - 1)
	if i >= 63 {
		return lo, int64(1)<<62 + (int64(1)<<62 - 1) // clamp to MaxInt64
	}
	return lo, int64(1) << i
}
