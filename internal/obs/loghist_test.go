package obs

import (
	"sync"
	"testing"
)

func TestLogHistogramCounts(t *testing.T) {
	h := NewLogHistogram()
	for _, v := range []int64{1, 2, 3, 100, 1000, 1000, 5000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 7 {
		t.Errorf("Count = %d, want 7", got)
	}
	if got := h.Sum(); got != 7106 {
		t.Errorf("Sum = %d, want 7106", got)
	}
	if got := h.Max(); got != 5000 {
		t.Errorf("Max = %d, want 5000", got)
	}
	h.ObserveN(10, 3)
	if got := h.Count(); got != 10 {
		t.Errorf("Count after ObserveN = %d, want 10", got)
	}
	if got := h.Sum(); got != 7136 {
		t.Errorf("Sum after ObserveN = %d, want 7136", got)
	}
}

func TestLogHistogramNegativeClamped(t *testing.T) {
	h := NewLogHistogram()
	h.Observe(-5)
	if got := h.Count(); got != 1 {
		t.Errorf("Count = %d, want 1", got)
	}
	if got := h.Sum(); got != 0 {
		t.Errorf("Sum = %d, want 0 (negative observations clamp to 0)", got)
	}
}

func TestLogHistogramNilSafe(t *testing.T) {
	var h *LogHistogram
	h.Observe(5)
	h.ObserveN(5, 3)
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 {
		t.Error("nil histogram must read as zero")
	}
	s := h.Snapshot()
	if s.Count != 0 {
		t.Errorf("nil Snapshot.Count = %d, want 0", s.Count)
	}
}

// Quantile estimates interpolate within a power-of-two bucket, so the tight
// guarantee is bucket-level: the estimate lies within the bucket holding the
// true quantile, and never exceeds the recorded max.
func TestLogHistogramQuantiles(t *testing.T) {
	h := NewLogHistogram()
	// 100 observations of 1000 (bucket [512, 1024)), one of 1<<20.
	h.ObserveN(1000, 100)
	h.Observe(1 << 20)
	s := h.Snapshot()
	if s.P50 < 512 || s.P50 >= 1024 {
		t.Errorf("P50 = %d, want within [512, 1024)", s.P50)
	}
	if s.P95 < 512 || s.P95 >= 1024 {
		t.Errorf("P95 = %d, want within [512, 1024)", s.P95)
	}
	// P99 rank = 99 of 101: still in the 1000s bucket.
	if s.P99 < 512 || s.P99 >= 1024 {
		t.Errorf("P99 = %d, want within [512, 1024)", s.P99)
	}
	if s.Max != 1<<20 {
		t.Errorf("Max = %d, want %d", s.Max, int64(1<<20))
	}
	// All-in-top-bucket distribution: quantiles clamp to Max, never above.
	h2 := NewLogHistogram()
	h2.ObserveN(700, 4)
	s2 := h2.Snapshot()
	if s2.P99 > s2.Max {
		t.Errorf("P99 = %d exceeds Max = %d", s2.P99, s2.Max)
	}
}

func TestLogHistogramMerge(t *testing.T) {
	a := NewLogHistogram()
	b := NewLogHistogram()
	a.ObserveN(100, 10)
	b.ObserveN(10000, 10)
	b.Observe(1 << 30)
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 21 {
		t.Errorf("merged Count = %d, want 21", m.Count)
	}
	if want := int64(10*100 + 10*10000 + 1<<30); m.Sum != want {
		t.Errorf("merged Sum = %d, want %d", m.Sum, want)
	}
	if m.Max != 1<<30 {
		t.Errorf("merged Max = %d, want %d", m.Max, int64(1<<30))
	}
	// Median of the merged distribution sits in the low bucket ([64, 128)
	// holds 100; interpolation may land on the upper edge), p95 in the high
	// one ([8192, 16384) holds 10000).
	if m.P50 < 64 || m.P50 > 128 {
		t.Errorf("merged P50 = %d, want within [64, 128]", m.P50)
	}
	if m.P95 < 8192 || m.P95 > 16384 {
		t.Errorf("merged P95 = %d, want within [8192, 16384]", m.P95)
	}
}

// TestLogHistogramConcurrent exercises parallel recorders against snapshot
// readers; run under -race this is the histogram's thread-safety gate.
func TestLogHistogramConcurrent(t *testing.T) {
	h := NewLogHistogram()
	const (
		writers = 4
		perW    = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.Observe(seed*1000 + int64(i))
				if i%16 == 0 {
					h.ObserveN(int64(i), 2)
				}
			}
		}(int64(w + 1))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var last int64
		for i := 0; i < 1000; i++ {
			s := h.Snapshot()
			if s.Count < last {
				t.Errorf("Snapshot.Count regressed: %d after %d", s.Count, last)
				return
			}
			last = s.Count
		}
	}()
	wg.Wait()
	<-done
	want := int64(writers * (perW + perW/16*2))
	if got := h.Count(); got != want {
		t.Errorf("final Count = %d, want %d", got, want)
	}
}

func TestNanotimeMonotonic(t *testing.T) {
	a := Nanotime()
	b := Nanotime()
	if a < 0 || b < a {
		t.Errorf("Nanotime regressed: %d then %d", a, b)
	}
}
