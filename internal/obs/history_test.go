package obs

import (
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestHistoryCounterDeltas(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("reqs", "", nil)
	c.Add(100) // pre-existing traffic before the sampler attaches

	h := NewHistory(reg, HistoryConfig{Capacity: 8})
	h.Sample() // baseline: must not report the 100 as a spike
	c.Add(3)
	h.Sample()
	c.Add(7)
	h.Sample()

	ws := h.Window("reqs", 0)
	if len(ws) != 1 {
		t.Fatalf("Window returned %d series, want 1", len(ws))
	}
	w := ws[0]
	if want := []int64{0, 3, 7}; len(w.Values) != 3 ||
		w.Values[0] != want[0] || w.Values[1] != want[1] || w.Values[2] != want[2] {
		t.Errorf("Values = %v, want %v", w.Values, want)
	}
	if w.Cumulative != 110 {
		t.Errorf("Cumulative = %d, want 110", w.Cumulative)
	}
	if w.Kind != "counter" {
		t.Errorf("Kind = %q, want counter", w.Kind)
	}
}

func TestHistoryGaugeValues(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("depth", "", nil)
	h := NewHistory(reg, HistoryConfig{Capacity: 8})
	for _, v := range []int64{5, 2, 9} {
		g.Set(v)
		h.Sample()
	}
	w := h.Window("depth", 0)[0]
	if want := []int64{5, 2, 9}; w.Values[0] != want[0] || w.Values[1] != want[1] || w.Values[2] != want[2] {
		t.Errorf("Values = %v, want %v", w.Values, want)
	}
	if w.Cumulative != 9 {
		t.Errorf("gauge Cumulative = %d, want latest value 9", w.Cumulative)
	}
}

func TestHistoryRingWrap(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("n", "", nil)
	h := NewHistory(reg, HistoryConfig{Capacity: 4})
	h.Sample() // baseline
	for i := 1; i <= 10; i++ {
		c.Add(int64(i))
		h.Sample()
	}
	if got := h.Samples(); got != 11 {
		t.Fatalf("Samples = %d, want 11", got)
	}
	w := h.Window("n", 0)[0]
	// Capacity 4: only the deltas of ticks 8, 9, 10 plus tick 7 survive.
	if want := []int64{7, 8, 9, 10}; len(w.Values) != 4 ||
		w.Values[0] != want[0] || w.Values[3] != want[3] {
		t.Errorf("wrapped Values = %v, want %v", w.Values, want)
	}
	if w.Cumulative != 55 {
		t.Errorf("Cumulative = %d, want 55", w.Cumulative)
	}
	// A narrower window trims from the old end.
	w2 := h.Window("n", 2)[0]
	if want := []int64{9, 10}; len(w2.Values) != 2 || w2.Values[0] != want[0] || w2.Values[1] != want[1] {
		t.Errorf("Window(2) Values = %v, want %v", w2.Values, want)
	}
}

func TestHistoryBareNameFansOutLabelSets(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits", "", Labels{"shard": "0"}).Add(1)
	reg.Counter("hits", "", Labels{"shard": "1"}).Add(2)
	h := NewHistory(reg, HistoryConfig{Capacity: 4})
	h.Sample()
	if ws := h.Window("hits", 0); len(ws) != 2 {
		t.Errorf("bare-name Window matched %d series, want 2", len(ws))
	}
	if ws := h.Window(`hits{shard="1"}`, 0); len(ws) != 1 {
		t.Errorf("exact-key Window matched %d series, want 1", len(ws))
	}
	keys := h.Series()
	if len(keys) != 2 {
		t.Errorf("Series listed %d entries, want 2", len(keys))
	}
}

// TestHistoryLogHistogramWindow checks the tentpole property on the sampled
// path: the window's merged bucket-wise deltas are exactly the distribution
// observed during the window, so windowed quantiles are exact — including
// when observations before the window must be excluded.
func TestHistoryLogHistogramWindow(t *testing.T) {
	reg := NewRegistry()
	lh := reg.LogHistogram("lat", "", nil)
	h := NewHistory(reg, HistoryConfig{Capacity: 8})
	lh.ObserveN(50, 50) // pre-attach traffic: excluded by the baseline tick
	h.Sample()

	ref := NewLogHistogram() // reference: only in-window observations
	for tick := 0; tick < 3; tick++ {
		for i := 0; i < 40; i++ {
			v := int64(100 + tick*1000 + i)
			lh.Observe(v)
			ref.Observe(v)
		}
		h.Sample()
	}

	w := h.Window("lat", 3)[0]
	if w.Quantiles == nil {
		t.Fatal("log-histogram window has no Quantiles")
	}
	got, want := *w.Quantiles, ref.Snapshot()
	// The 50 pre-attach observations must not leak into the window.
	if got.Count != want.Count || got.Sum != want.Sum {
		t.Errorf("window Count/Sum = %d/%d, want %d/%d", got.Count, got.Sum, want.Count, want.Sum)
	}
	if got.P50 != want.P50 || got.P95 != want.P95 || got.P99 != want.P99 {
		t.Errorf("window quantiles = %d/%d/%d, want %d/%d/%d",
			got.P50, got.P95, got.P99, want.P50, want.P95, want.P99)
	}
}

// TestLogSnapshotMergeProperty is the satellite property test: for random
// streams split arbitrarily into two histograms, Merge of the two snapshots
// equals the snapshot of one histogram fed the combined stream — in count,
// sum, max, and every quantile.
func TestLogSnapshotMergeProperty(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		a, b, both := NewLogHistogram(), NewLogHistogram(), NewLogHistogram()
		n := 50 + r.Intn(500)
		for i := 0; i < n; i++ {
			v := int64(r.Intn(1 << uint(1+r.Intn(40))))
			if r.Intn(2) == 0 {
				a.Observe(v)
			} else {
				b.Observe(v)
			}
			both.Observe(v)
		}
		got := a.Snapshot().Merge(b.Snapshot())
		want := both.Snapshot()
		if got.Count != want.Count || got.Sum != want.Sum || got.Max != want.Max {
			t.Fatalf("seed %d: merged Count/Sum/Max = %d/%d/%d, want %d/%d/%d",
				seed, got.Count, got.Sum, got.Max, want.Count, want.Sum, want.Max)
		}
		if got.P50 != want.P50 || got.P95 != want.P95 || got.P99 != want.P99 {
			t.Fatalf("seed %d: merged quantiles = %d/%d/%d, want %d/%d/%d",
				seed, got.P50, got.P95, got.P99, want.P50, want.P95, want.P99)
		}
		for i, c := range want.Buckets {
			if got.Buckets[i] != c {
				t.Fatalf("seed %d: merged bucket %d = %d, want %d", seed, i, got.Buckets[i], c)
			}
		}
	}
}

// TestHistorySamplerRace runs the sampling goroutine at full tilt against
// live recorders and concurrent window readers; under -race this is the
// subsystem's thread-safety gate.
func TestHistorySamplerRace(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("reqs", "", nil)
	g := reg.Gauge("depth", "", nil)
	lh := reg.LogHistogram("lat", "", nil)

	h := NewHistory(reg, HistoryConfig{Capacity: 32, Interval: time.Millisecond})
	h.Start()
	h.Start() // idempotent

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := int64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(i % 100)
				lh.Observe(seed*100 + i%1000)
				// Late registration while sampling runs.
				if i == 500 {
					reg.Counter("late", "", Labels{"w": string(rune('a' + seed))}).Inc()
				}
			}
		}(int64(w))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			h.Series()
			h.Window("lat", 8)
			h.Samples()
		}
	}()

	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	h.Stop()
	h.Stop() // idempotent
	if h.Samples() == 0 {
		t.Error("sampler took no ticks")
	}
	h.Sample() // manual sampling stays valid after Stop
}

func TestHistoryNilSafe(t *testing.T) {
	var h *History
	h.Sample()
	h.Start()
	h.Stop()
	h.BeforeSample(func() {})
	h.AfterSample(func() {})
	if h.Samples() != 0 || h.Series() != nil || h.Window("x", 0) != nil ||
		h.Registry() != nil || h.Interval() != 0 {
		t.Error("nil History must read as empty")
	}
}

func TestHistoryHooks(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("derived", "", nil)
	h := NewHistory(reg, HistoryConfig{Capacity: 4})
	var afterRan int
	h.BeforeSample(func() { g.Set(42) }) // refresh runs before the read
	h.AfterSample(func() { afterRan++ })
	h.Sample()
	if w := h.Window("derived", 0)[0]; w.Values[0] != 42 {
		t.Errorf("BeforeSample refresh not visible to the tick: got %d", w.Values[0])
	}
	if afterRan != 1 {
		t.Errorf("AfterSample ran %d times, want 1", afterRan)
	}
}

func TestHistoryPage(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("reqs", "", nil).Add(5)
	h := NewHistory(reg, HistoryConfig{Capacity: 4})
	h.Sample()
	h.Sample()
	page := HistoryPage(h)

	get := func(url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		page.Handler.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		return rec
	}

	rec := get("/debug/history")
	if rec.Code != 200 {
		t.Fatalf("listing status = %d, want 200", rec.Code)
	}
	if cc := rec.Header().Get("Cache-Control"); cc != "no-cache" {
		t.Errorf("Cache-Control = %q, want no-cache", cc)
	}
	var listing struct {
		Samples int64       `json:"samples"`
		Series  []SeriesKey `json:"series"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil {
		t.Fatalf("listing not JSON: %v", err)
	}
	if listing.Samples != 2 || len(listing.Series) != 1 {
		t.Errorf("listing = %+v, want 2 samples / 1 series", listing)
	}

	rec = get("/debug/history?series=reqs&n=1")
	var windows []SeriesWindow
	if err := json.Unmarshal(rec.Body.Bytes(), &windows); err != nil {
		t.Fatalf("window response not JSON: %v", err)
	}
	if len(windows) != 1 || len(windows[0].Values) != 1 {
		t.Errorf("windows = %+v, want one series with one tick", windows)
	}

	if rec = get("/debug/history?series=nope"); rec.Code != 404 {
		t.Errorf("unknown series status = %d, want 404", rec.Code)
	}

	nilPage := HistoryPage(nil)
	rec = httptest.NewRecorder()
	nilPage.Handler.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/history", nil))
	if rec.Code != 503 {
		t.Errorf("nil history status = %d, want 503", rec.Code)
	}
}
