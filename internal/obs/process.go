package obs

import (
	"runtime"
	"runtime/debug"
	"runtime/metrics"
)

// Process-level metric names.
const (
	MetricBuildInfo  = "upa_build_info"
	MetricUptime     = "upa_uptime_seconds"
	MetricGoroutines = "upa_goroutines"
	MetricHeapBytes  = "upa_heap_bytes"
	MetricGCCycles   = "upa_gc_cycles_total"
)

// runtimeSampleNames are the runtime/metrics samples backing the process
// gauges. Reading them is a few atomic loads per sample — far cheaper
// than runtime.ReadMemStats, which stops the world.
var runtimeSampleNames = [...]string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/gc/cycles/total:gc-cycles",
}

// RegisterProcessMetrics registers build/uptime/Go-runtime series on reg
// and returns a refresh function that re-reads them — designed to hang off
// History.BeforeSample so every tick sees fresh values. The refresh runs
// once before returning, so scrape-only users get populated series too.
// Safe on a nil registry (returns a no-op refresh).
func RegisterProcessMetrics(reg *Registry) func() {
	if reg == nil {
		return func() {}
	}
	version := "devel"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		version = bi.Main.Version
	}
	reg.Gauge(MetricBuildInfo,
		"Always 1; build metadata rides on the labels.",
		Labels{"go": runtime.Version(), "version": version}).Set(1)

	uptime := reg.Gauge(MetricUptime, "Seconds since process start.", nil)
	goroutines := reg.Gauge(MetricGoroutines, "Live goroutines.", nil)
	heap := reg.Gauge(MetricHeapBytes, "Bytes of live heap objects.", nil)
	gc := reg.Counter(MetricGCCycles, "Completed GC cycles.", nil)

	samples := make([]metrics.Sample, len(runtimeSampleNames))
	for i, n := range runtimeSampleNames {
		samples[i].Name = n
	}
	// Resume from the counter's current value so registering twice on the
	// same registry (idempotent lookup returns the same counter) does not
	// double-charge completed cycles.
	gcSeen := gc.Value()
	refresh := func() {
		uptime.Set(Nanotime() / 1e9)
		metrics.Read(samples)
		for i, s := range samples {
			if s.Value.Kind() != metrics.KindUint64 {
				continue
			}
			v := int64(s.Value.Uint64())
			switch runtimeSampleNames[i] {
			case "/sched/goroutines:goroutines":
				goroutines.Set(v)
			case "/memory/classes/heap/objects:bytes":
				heap.Set(v)
			case "/gc/cycles/total:gc-cycles":
				if d := v - gcSeen; d > 0 {
					gc.Add(d)
					gcSeen = v
				}
			}
		}
	}
	refresh()
	return refresh
}
