// Package relation implements the two table flavours of Section 4.1 of
// Golab & Özsu (SIGMOD 2005):
//
//   - Relation: a traditional table with arbitrary retroactive updates. An
//     insertion at time τ joins with previously arrived stream tuples, and a
//     deletion retracts previously reported results — so any operator
//     consuming a Relation produces strict non-monotonic output.
//   - NRR (non-retroactive relation): a table whose updates affect only
//     stream tuples arriving after the update. NRR joins never scan window
//     state on table updates, never emit retractions, and therefore preserve
//     the update pattern of their streaming input (monotonic over streams,
//     weakest non-monotonic over windows).
//
// Both structures deliver update notifications to registered listeners; the
// executor wires those to ⋈R operators.
package relation

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/tuple"
)

// UpdateKind enumerates table mutations.
type UpdateKind int

const (
	// Insert adds a row.
	Insert UpdateKind = iota
	// Delete removes one row matching the given values.
	Delete
)

// String names the update kind.
func (k UpdateKind) String() string {
	if k == Delete {
		return "delete"
	}
	return "insert"
}

// Update is one table mutation, timestamped like stream tuples. An in-place
// update of a row is modeled as Delete followed by Insert at the same time.
type Update struct {
	Kind UpdateKind
	TS   int64
	Row  []tuple.Value
}

// Listener receives table mutations after they are applied.
type Listener func(u Update)

// Table is the shared implementation of Relation and NRR: a multiset of rows
// hash-indexed by full row value for O(1) deletion, with secondary probing
// by arbitrary key columns for joins.
type Table struct {
	name      string
	schema    *tuple.Schema
	retro     bool
	rows      map[tuple.Key][]row // keyed by full-row key
	byKey     map[string]*index   // lazily built secondary indexes
	size      int
	listeners []Listener
}

type row struct {
	ts   int64 // insertion time
	vals []tuple.Value
}

type index struct {
	cols    []int
	buckets map[tuple.Key][]row
}

// NewRelation builds a retroactive relation.
func NewRelation(name string, schema *tuple.Schema) *Table {
	return newTable(name, schema, true)
}

// NewNRR builds a non-retroactive relation.
func NewNRR(name string, schema *tuple.Schema) *Table {
	return newTable(name, schema, false)
}

func newTable(name string, schema *tuple.Schema, retro bool) *Table {
	return &Table{
		name:   name,
		schema: schema,
		retro:  retro,
		rows:   make(map[tuple.Key][]row),
		byKey:  make(map[string]*index),
	}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *tuple.Schema { return t.schema }

// Retroactive reports whether updates affect previously arrived stream
// tuples (true for Relation, false for NRR).
func (t *Table) Retroactive() bool { return t.retro }

// Len returns the current row count.
func (t *Table) Len() int { return t.size }

// Subscribe registers a listener invoked after every applied update.
func (t *Table) Subscribe(fn Listener) { t.listeners = append(t.listeners, fn) }

func (t *Table) fullKey(vals []tuple.Value) tuple.Key {
	cols := make([]int, len(vals))
	for i := range cols {
		cols[i] = i
	}
	return tuple.Tuple{Vals: vals}.Key(cols)
}

// Apply executes one mutation and notifies listeners. Deleting an absent row
// is an error (callers must not retract what was never inserted).
func (t *Table) Apply(u Update) error {
	if len(u.Row) != t.schema.Len() {
		return fmt.Errorf("relation %s: row arity %d != schema %d", t.name, len(u.Row), t.schema.Len())
	}
	switch u.Kind {
	case Insert:
		r := row{ts: u.TS, vals: append([]tuple.Value(nil), u.Row...)}
		k := t.fullKey(u.Row)
		t.rows[k] = append(t.rows[k], r)
		for _, idx := range t.byKey {
			ik := tuple.Tuple{Vals: r.vals}.Key(idx.cols)
			idx.buckets[ik] = append(idx.buckets[ik], r)
		}
		t.size++
	case Delete:
		k := t.fullKey(u.Row)
		bucket := t.rows[k]
		if len(bucket) == 0 {
			return fmt.Errorf("relation %s: delete of absent row %v", t.name, u.Row)
		}
		victim := bucket[0] // oldest first, deterministic
		t.rows[k] = bucket[1:]
		if len(t.rows[k]) == 0 {
			delete(t.rows, k)
		}
		for _, idx := range t.byKey {
			ik := tuple.Tuple{Vals: victim.vals}.Key(idx.cols)
			ib := idx.buckets[ik]
			for i := range ib {
				if sameVals(ib[i].vals, victim.vals) && ib[i].ts == victim.ts {
					idx.buckets[ik] = append(ib[:i], ib[i+1:]...)
					break
				}
			}
			if len(idx.buckets[ik]) == 0 {
				delete(idx.buckets, ik)
			}
		}
		t.size--
	default:
		return fmt.Errorf("relation %s: unknown update kind %d", t.name, u.Kind)
	}
	for _, fn := range t.listeners {
		fn(u)
	}
	return nil
}

func sameVals(a, b []tuple.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// EnsureIndex builds (or returns) a secondary index over the given columns,
// so ⋈NRR / ⋈R probe in O(1) expected time.
func (t *Table) EnsureIndex(cols []int) {
	key := fmt.Sprint(cols)
	if _, ok := t.byKey[key]; ok {
		return
	}
	idx := &index{cols: append([]int(nil), cols...), buckets: make(map[tuple.Key][]row)}
	for _, bucket := range t.rows {
		for _, r := range bucket {
			ik := tuple.Tuple{Vals: r.vals}.Key(cols)
			idx.buckets[ik] = append(idx.buckets[ik], r)
		}
	}
	t.byKey[key] = idx
}

// Probe visits current rows whose key over cols equals k. The index over
// cols must have been built with EnsureIndex; otherwise Probe falls back to a
// full scan.
func (t *Table) Probe(cols []int, k tuple.Key, fn func(vals []tuple.Value) bool) {
	if idx, ok := t.byKey[fmt.Sprint(cols)]; ok {
		for _, r := range idx.buckets[k] {
			if !fn(r.vals) {
				return
			}
		}
		return
	}
	t.Scan(func(vals []tuple.Value) bool {
		if (tuple.Tuple{Vals: vals}).Key(cols) == k {
			return fn(vals)
		}
		return true
	})
}

// SaveState implements checkpoint.Snapshotter: the current rows with their
// insertion timestamps. Secondary indexes are derived state and are rebuilt
// on load rather than serialized. Per-key bucket order (which decides the
// deletion victim among duplicate rows) is preserved.
func (t *Table) SaveState(enc *checkpoint.Encoder) error {
	enc.Uvarint(uint64(t.size))
	for _, bucket := range t.rows {
		for _, r := range bucket {
			enc.Varint(r.ts)
			enc.Uvarint(uint64(len(r.vals)))
			for _, v := range r.vals {
				enc.Value(v)
			}
		}
	}
	return enc.Err()
}

// LoadState implements checkpoint.Snapshotter. Rows are re-keyed and every
// secondary index already requested via EnsureIndex is rebuilt. Listeners
// are NOT notified: a restore reproduces state, it is not a stream of
// updates.
func (t *Table) LoadState(dec *checkpoint.Decoder) error {
	n := dec.Count()
	t.rows = make(map[tuple.Key][]row)
	t.size = 0
	for _, idx := range t.byKey {
		idx.buckets = make(map[tuple.Key][]row)
	}
	for i := 0; i < n && dec.Err() == nil; i++ {
		ts := dec.Varint()
		nv := dec.Count()
		var vals []tuple.Value
		for j := 0; j < nv && dec.Err() == nil; j++ {
			vals = append(vals, dec.Value())
		}
		if dec.Err() != nil {
			break
		}
		if len(vals) != t.schema.Len() {
			return fmt.Errorf("%w: table %s row arity %d != schema %d",
				checkpoint.ErrCorrupt, t.name, len(vals), t.schema.Len())
		}
		r := row{ts: ts, vals: vals}
		k := t.fullKey(vals)
		t.rows[k] = append(t.rows[k], r)
		for _, idx := range t.byKey {
			ik := tuple.Tuple{Vals: vals}.Key(idx.cols)
			idx.buckets[ik] = append(idx.buckets[ik], r)
		}
		t.size++
	}
	return dec.Err()
}

// Scan visits every current row.
func (t *Table) Scan(fn func(vals []tuple.Value) bool) {
	for _, bucket := range t.rows {
		for _, r := range bucket {
			if !fn(r.vals) {
				return
			}
		}
	}
}
