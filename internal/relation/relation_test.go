package relation

import (
	"testing"

	"repro/internal/tuple"
)

func symSchema() *tuple.Schema {
	return tuple.MustSchema(
		tuple.Column{Name: "symbol", Kind: tuple.KindString},
		tuple.Column{Name: "company", Kind: tuple.KindString},
	)
}

func row2(sym, co string) []tuple.Value {
	return []tuple.Value{tuple.String_(sym), tuple.String_(co)}
}

func TestInsertDeleteAndLen(t *testing.T) {
	r := NewNRR("symbols", symSchema())
	if r.Retroactive() {
		t.Error("NRR must be non-retroactive")
	}
	if err := r.Apply(Update{Kind: Insert, TS: 1, Row: row2("IBM", "IBM Corp")}); err != nil {
		t.Fatal(err)
	}
	if err := r.Apply(Update{Kind: Insert, TS: 2, Row: row2("SUNW", "Sun Microsystems")}); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	if err := r.Apply(Update{Kind: Delete, TS: 3, Row: row2("IBM", "IBM Corp")}); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	if err := r.Apply(Update{Kind: Delete, TS: 4, Row: row2("IBM", "IBM Corp")}); err == nil {
		t.Error("deleting absent row must fail")
	}
}

func TestArityValidation(t *testing.T) {
	r := NewRelation("r", symSchema())
	if !r.Retroactive() {
		t.Error("Relation must be retroactive")
	}
	if err := r.Apply(Update{Kind: Insert, TS: 1, Row: []tuple.Value{tuple.Int(1)}}); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := r.Apply(Update{Kind: UpdateKind(9), TS: 1, Row: row2("a", "b")}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestDuplicateRowsMultiset(t *testing.T) {
	r := NewNRR("t", symSchema())
	r.Apply(Update{Kind: Insert, TS: 1, Row: row2("A", "x")})
	r.Apply(Update{Kind: Insert, TS: 2, Row: row2("A", "x")})
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	if err := r.Apply(Update{Kind: Delete, TS: 3, Row: row2("A", "x")}); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("Len after one delete = %d", r.Len())
	}
}

func TestListeners(t *testing.T) {
	r := NewNRR("t", symSchema())
	var got []Update
	r.Subscribe(func(u Update) { got = append(got, u) })
	r.Apply(Update{Kind: Insert, TS: 1, Row: row2("A", "x")})
	r.Apply(Update{Kind: Delete, TS: 2, Row: row2("A", "x")})
	if len(got) != 2 || got[0].Kind != Insert || got[1].Kind != Delete {
		t.Errorf("listener saw %v", got)
	}
	if got[0].Kind.String() != "insert" || got[1].Kind.String() != "delete" {
		t.Errorf("kind names: %v %v", got[0].Kind, got[1].Kind)
	}
}

func TestProbeWithAndWithoutIndex(t *testing.T) {
	r := NewNRR("t", symSchema())
	r.Apply(Update{Kind: Insert, TS: 1, Row: row2("A", "x")})
	r.Apply(Update{Kind: Insert, TS: 2, Row: row2("A", "y")})
	r.Apply(Update{Kind: Insert, TS: 3, Row: row2("B", "z")})

	key := tuple.Tuple{Vals: row2("A", "?")}.Key([]int{0})
	countHits := func() int {
		n := 0
		r.Probe([]int{0}, key, func([]tuple.Value) bool { n++; return true })
		return n
	}
	if countHits() != 2 { // fallback scan path
		t.Errorf("unindexed probe hits = %d", countHits())
	}
	r.EnsureIndex([]int{0})
	if countHits() != 2 { // indexed path
		t.Errorf("indexed probe hits = %d", countHits())
	}
	// Index stays consistent across updates.
	r.Apply(Update{Kind: Insert, TS: 4, Row: row2("A", "w")})
	r.Apply(Update{Kind: Delete, TS: 5, Row: row2("A", "x")})
	if countHits() != 2 {
		t.Errorf("post-update indexed probe hits = %d", countHits())
	}
	// EnsureIndex is idempotent.
	r.EnsureIndex([]int{0})
	if countHits() != 2 {
		t.Errorf("re-index probe hits = %d", countHits())
	}
}

func TestProbeEarlyStop(t *testing.T) {
	r := NewNRR("t", symSchema())
	r.EnsureIndex([]int{0})
	r.Apply(Update{Kind: Insert, TS: 1, Row: row2("A", "x")})
	r.Apply(Update{Kind: Insert, TS: 2, Row: row2("A", "y")})
	key := tuple.Tuple{Vals: row2("A", "?")}.Key([]int{0})
	n := 0
	r.Probe([]int{0}, key, func([]tuple.Value) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestScan(t *testing.T) {
	r := NewRelation("t", symSchema())
	r.Apply(Update{Kind: Insert, TS: 1, Row: row2("A", "x")})
	r.Apply(Update{Kind: Insert, TS: 2, Row: row2("B", "y")})
	seen := map[string]bool{}
	r.Scan(func(vals []tuple.Value) bool { seen[vals[0].S] = true; return true })
	if !seen["A"] || !seen["B"] {
		t.Errorf("Scan saw %v", seen)
	}
	n := 0
	r.Scan(func([]tuple.Value) bool { n++; return false })
	if n != 1 {
		t.Errorf("Scan early stop visited %d", n)
	}
}

func TestRowIsolation(t *testing.T) {
	r := NewNRR("t", symSchema())
	vals := row2("A", "x")
	r.Apply(Update{Kind: Insert, TS: 1, Row: vals})
	vals[0] = tuple.String_("MUTATED")
	found := false
	r.Scan(func(got []tuple.Value) bool { found = got[0].S == "A"; return false })
	if !found {
		t.Error("table must copy inserted rows")
	}
}
