package core

import "fmt"

// OpClass identifies a logical operator for pattern-propagation purposes.
// The five rules of Section 5.2 are stated over these classes.
type OpClass int

const (
	// OpSelect is selection (stateless, unary).
	OpSelect OpClass = iota
	// OpProject is duplicate-preserving projection (stateless, unary).
	OpProject
	// OpUnion is non-blocking merge union (stateless, binary).
	OpUnion
	// OpJoin is the sliding-window equijoin (stateful, binary).
	OpJoin
	// OpIntersect is multiset window intersection (stateful, binary).
	OpIntersect
	// OpDistinct is duplicate elimination over a window (stateful, unary).
	OpDistinct
	// OpGroupBy is grouped aggregation (stateful, unary).
	OpGroupBy
	// OpNegate is multiset difference W1 − W2 on an attribute (stateful,
	// binary, generates negative tuples).
	OpNegate
	// OpNRRJoin joins a stream/window with a non-retroactive relation
	// (Section 4.1); table updates do not affect prior stream tuples.
	OpNRRJoin
	// OpRelJoin joins a window with a retroactive relation; table updates
	// retract/extend prior results, forcing strict output.
	OpRelJoin
)

// String names the operator class.
func (c OpClass) String() string {
	switch c {
	case OpSelect:
		return "select"
	case OpProject:
		return "project"
	case OpUnion:
		return "union"
	case OpJoin:
		return "join"
	case OpIntersect:
		return "intersect"
	case OpDistinct:
		return "distinct"
	case OpGroupBy:
		return "groupby"
	case OpNegate:
		return "negate"
	case OpNRRJoin:
		return "nrr-join"
	case OpRelJoin:
		return "rel-join"
	default:
		return fmt.Sprintf("op(%d)", int(c))
	}
}

// Stateless reports whether the operator stores no tuples.
func (c OpClass) Stateless() bool {
	switch c {
	case OpSelect, OpProject, OpUnion, OpNRRJoin:
		// ⋈NRR stores only the table, never the streaming input (§4.1).
		return true
	default:
		return false
	}
}

// OwnPattern is the update pattern the operator itself introduces when fed
// the simplest possible input — the operator rows of the Section 3.1
// classification, assuming sliding-window (not unbounded) inputs:
//
//	selection/projection/union over a window  → Weakest
//	join/intersect/distinct/group-by          → Weak
//	negation / retroactive relation join      → Strict
func (c OpClass) OwnPattern() Pattern {
	switch c {
	case OpSelect, OpProject, OpUnion, OpNRRJoin:
		return Weakest
	case OpJoin, OpIntersect, OpDistinct, OpGroupBy:
		return Weak
	case OpNegate, OpRelJoin:
		return Strict
	default:
		return Strict
	}
}

// Propagate computes the update pattern on an operator's output edge from
// the patterns of its input edges — the five rules of Section 5.2:
//
//  1. The output of unary weakest non-monotonic operators (selection,
//     projection) and ⋈NRR equals the input pattern.
//  2. The output of binary weakest non-monotonic operators (merge-union) is
//     the more complex of the two input patterns.
//  3. The output of weak non-monotonic operators other than group-by (join,
//     intersection, duplicate elimination) is STR if any input is STR, and
//     WK otherwise.
//  4. The output of group-by is always WK, regardless of input: newly
//     generated aggregate values replace old ones without negative tuples.
//  5. The output of strict non-monotonic operators (negation) and ⋈R is
//     always STR.
//
// Inputs with the Monotonic pattern (unbounded, windowless streams) keep
// stateless operators monotonic; stateful operators over such inputs would
// need unbounded state and are flagged by Feasible.
func Propagate(c OpClass, inputs ...Pattern) Pattern {
	in := MaxOf(inputs...)
	switch c {
	case OpSelect, OpProject, OpNRRJoin:
		return in // Rule 1
	case OpUnion:
		return in // Rule 2
	case OpJoin, OpIntersect, OpDistinct:
		if in == Strict {
			return Strict // Rule 3
		}
		if in == Monotonic {
			// Join of unbounded streams: monotonic (but infeasible state).
			return Monotonic
		}
		return Weak // Rule 3
	case OpGroupBy:
		return Weak // Rule 4
	case OpNegate, OpRelJoin:
		return Strict // Rule 5
	default:
		return Strict
	}
}

// Feasible reports whether the operator can run in bounded memory given its
// input patterns: stateful operators over unbounded (Monotonic) inputs
// require infinite state (Section 1, [2]). Group-by is the exception the
// paper's Section 3.1 carves out: over an unbounded stream nothing ever
// expires, so only the per-group aggregate values (not the input) need to
// be stored — distributive aggregates run in space proportional to the
// number of groups.
func Feasible(c OpClass, inputs ...Pattern) bool {
	if c.Stateless() || c == OpGroupBy {
		return true
	}
	for _, p := range inputs {
		if p == Monotonic {
			return false
		}
	}
	return true
}
