package core

// Semantics documents and encodes the continuous-query semantics of
// Section 4.2 (Definitions 1 and 2) so tests can assert conformance.
//
// Definition 1: at any time τ, the answer Q(τ) must equal the output of the
// corresponding one-time relational query evaluated over the current states
// of the streams, sliding windows, and relations referenced in Q.
//
// Definition 2 refines this for non-retroactive relations: each result tuple
// t must reflect the state the NRRs had at t's generation time t.TS, not at
// τ. The reference evaluator (package reference) implements both and the
// integration tests compare every execution strategy against it after every
// event.
//
// Output form (Section 4.2): monotonic queries emit an append-only stream;
// non-monotonic queries (WKS, WK, STR) maintain a materialized view that
// reflects all positive (insertion) and negative (deletion) tuples produced
// on the output stream.

// OutputForm describes how a query's answer is delivered.
type OutputForm int

const (
	// AppendOnlyStream: results accumulate forever (monotonic queries).
	AppendOnlyStream OutputForm = iota
	// MaterializedView: results are a view kept consistent under
	// insertions and expirations/retractions (non-monotonic queries).
	MaterializedView
)

// String names the output form.
func (f OutputForm) String() string {
	if f == AppendOnlyStream {
		return "append-only stream"
	}
	return "materialized view"
}

// OutputFormOf returns the delivery form mandated by Section 4.2 for a query
// with the given root update pattern.
func OutputFormOf(p Pattern) OutputForm {
	if p == Monotonic {
		return AppendOnlyStream
	}
	return MaterializedView
}
