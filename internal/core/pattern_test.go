package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPatternOrderingAndNames(t *testing.T) {
	if !(Monotonic < Weakest && Weakest < Weak && Weak < Strict) {
		t.Fatal("lattice order broken")
	}
	names := map[Pattern]string{Monotonic: "MONO", Weakest: "WKS", Weak: "WK", Strict: "STR"}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
	if Pattern(42).String() == "" {
		t.Error("unknown pattern should still render")
	}
}

func TestMaxAndMaxOf(t *testing.T) {
	if Max(Weakest, Weak) != Weak || Max(Strict, Monotonic) != Strict {
		t.Error("Max wrong")
	}
	if MaxOf() != Monotonic {
		t.Error("MaxOf() should be Monotonic")
	}
	if MaxOf(Weakest, Strict, Weak) != Strict {
		t.Error("MaxOf fold wrong")
	}
}

func TestPatternFlags(t *testing.T) {
	if !Strict.NeedsNegativeTuples() || Weak.NeedsNegativeTuples() {
		t.Error("NeedsNegativeTuples wrong")
	}
	if !Monotonic.ExpiresFIFO() || !Weakest.ExpiresFIFO() || Weak.ExpiresFIFO() || Strict.ExpiresFIFO() {
		t.Error("ExpiresFIFO wrong")
	}
}

func TestOpClassMetadata(t *testing.T) {
	stateless := []OpClass{OpSelect, OpProject, OpUnion, OpNRRJoin}
	for _, c := range stateless {
		if !c.Stateless() {
			t.Errorf("%v should be stateless", c)
		}
	}
	stateful := []OpClass{OpJoin, OpIntersect, OpDistinct, OpGroupBy, OpNegate, OpRelJoin}
	for _, c := range stateful {
		if c.Stateless() {
			t.Errorf("%v should be stateful", c)
		}
	}
	for _, c := range append(stateless, stateful...) {
		if c.String() == "" {
			t.Errorf("empty name for %d", c)
		}
	}
	if OpClass(99).String() == "" || OpClass(99).OwnPattern() != Strict {
		t.Error("unknown class defaults")
	}
}

// TestPropagationRulesFromPaper checks each of Section 5.2's five rules on
// the concrete cases the paper gives.
func TestPropagationRulesFromPaper(t *testing.T) {
	cases := []struct {
		name string
		op   OpClass
		in   []Pattern
		want Pattern
	}{
		// Rule 1: unary WKS operators and ⋈NRR pass the input through.
		{"select/wks", OpSelect, []Pattern{Weakest}, Weakest},
		{"select/wk", OpSelect, []Pattern{Weak}, Weak},
		{"select/str", OpSelect, []Pattern{Strict}, Strict},
		{"project/mono", OpProject, []Pattern{Monotonic}, Monotonic},
		{"nrrjoin/wks", OpNRRJoin, []Pattern{Weakest}, Weakest},
		{"nrrjoin/mono", OpNRRJoin, []Pattern{Monotonic}, Monotonic}, // §4.1: monotonic over a stream
		// Rule 2: union takes the more complex input.
		{"union/wks-wks", OpUnion, []Pattern{Weakest, Weakest}, Weakest},
		{"union/wks-wk", OpUnion, []Pattern{Weakest, Weak}, Weak},
		{"union/wk-str", OpUnion, []Pattern{Weak, Strict}, Strict},
		// Rule 3: WK operators output WK, or STR if any input is STR.
		{"join/wks-wks", OpJoin, []Pattern{Weakest, Weakest}, Weak},
		{"join/wks-wk", OpJoin, []Pattern{Weakest, Weak}, Weak},
		{"join/str", OpJoin, []Pattern{Weakest, Strict}, Strict},
		{"distinct/wks", OpDistinct, []Pattern{Weakest}, Weak},
		{"distinct/str", OpDistinct, []Pattern{Strict}, Strict},
		{"intersect/wk", OpIntersect, []Pattern{Weak, Weakest}, Weak},
		// Rule 4: group-by is always WK, even over STR input.
		{"groupby/wks", OpGroupBy, []Pattern{Weakest}, Weak},
		{"groupby/str", OpGroupBy, []Pattern{Strict}, Weak},
		// Rule 5: negation and ⋈R are always STR.
		{"negate/wks", OpNegate, []Pattern{Weakest, Weakest}, Strict},
		{"negate/mono", OpNegate, []Pattern{Monotonic, Monotonic}, Strict},
		{"reljoin/wks", OpRelJoin, []Pattern{Weakest}, Strict},
	}
	for _, c := range cases {
		if got := Propagate(c.op, c.in...); got != c.want {
			t.Errorf("%s: Propagate(%v, %v) = %v, want %v", c.name, c.op, c.in, got, c.want)
		}
	}
}

func TestPropagateMonotoneInInputs(t *testing.T) {
	// Property: raising any input pattern never lowers the output pattern.
	ops := []OpClass{OpSelect, OpProject, OpUnion, OpJoin, OpIntersect, OpDistinct, OpGroupBy, OpNegate, OpNRRJoin, OpRelJoin}
	pats := []Pattern{Monotonic, Weakest, Weak, Strict}
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(ops[r.Intn(len(ops))])
			args[1] = reflect.ValueOf(pats[r.Intn(len(pats))])
			args[2] = reflect.ValueOf(pats[r.Intn(len(pats))])
			args[3] = reflect.ValueOf(pats[r.Intn(len(pats))])
		},
	}
	prop := func(op OpClass, a, b, hi Pattern) bool {
		base := Propagate(op, a, b)
		raised := Propagate(op, Max(a, hi), Max(b, hi))
		return raised >= base
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestFeasibility(t *testing.T) {
	if Feasible(OpJoin, Monotonic, Weakest) {
		t.Error("join over an unbounded stream is infeasible")
	}
	if !Feasible(OpJoin, Weakest, Weakest) {
		t.Error("windowed join is feasible")
	}
	if !Feasible(OpSelect, Monotonic) {
		t.Error("stateless ops are always feasible")
	}
	if !Feasible(OpNRRJoin, Monotonic) {
		t.Error("⋈NRR does not store its streaming input (§4.1)")
	}
	if Feasible(OpNegate, Monotonic, Monotonic) {
		t.Error("negation over unbounded streams is infeasible")
	}
}

func TestOwnPatternTable(t *testing.T) {
	want := map[OpClass]Pattern{
		OpSelect: Weakest, OpProject: Weakest, OpUnion: Weakest, OpNRRJoin: Weakest,
		OpJoin: Weak, OpIntersect: Weak, OpDistinct: Weak, OpGroupBy: Weak,
		OpNegate: Strict, OpRelJoin: Strict,
	}
	for op, p := range want {
		if op.OwnPattern() != p {
			t.Errorf("%v.OwnPattern() = %v, want %v", op, op.OwnPattern(), p)
		}
	}
}

func TestOutputForm(t *testing.T) {
	if OutputFormOf(Monotonic) != AppendOnlyStream {
		t.Error("monotonic queries emit append-only streams")
	}
	for _, p := range []Pattern{Weakest, Weak, Strict} {
		if OutputFormOf(p) != MaterializedView {
			t.Errorf("%v queries need a materialized view", p)
		}
	}
	if AppendOnlyStream.String() == MaterializedView.String() {
		t.Error("output form names must differ")
	}
}
