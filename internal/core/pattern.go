// Package core models the primary contribution of Golab & Özsu (SIGMOD
// 2005): the classification of continuous queries by their update patterns —
// the order in which results are produced and deleted over time — and the
// rules that propagate those patterns through query plans.
//
// The classification (Section 3.1) forms a four-point lattice of
// progressively more complex behaviour:
//
//		Monotonic < Weakest (WKS) < Weak (WK) < Strict (STR)
//
//	  - Monotonic queries never delete results; output is an append-only
//	    stream. Only stateless operators over unbounded streams qualify.
//	  - Weakest non-monotonic (WKS) queries expire results first-in-first-out:
//	    they store no state and never reorder tuples (selection/projection over
//	    one window, merge-union).
//	  - Weak non-monotonic (WK) queries may expire results out of FIFO order,
//	    but every result's expiration time is known when it is produced, via
//	    exp timestamps (window join, duplicate elimination, group-by).
//	  - Strict non-monotonic (STR) queries expire some results at
//	    unpredictable times and must announce those expirations with negative
//	    tuples (negation, joins with retroactive relations).
//
// Section 4 applies the classification to give continuous queries a precise
// semantics (Definitions 1 and 2, documented on Semantics); Section 5
// exploits it to pick physical operator implementations and state structures
// (packages plan, operator, statebuf, exec).
package core

import "fmt"

// Pattern is an update-pattern class. The zero value is Monotonic; larger
// values are strictly "more complex" per the paper's ordering, so Max over a
// set of inputs gives the least upper bound used by the propagation rules.
type Pattern int

const (
	// Monotonic output is append-only; results never expire.
	Monotonic Pattern = iota
	// Weakest non-monotonic (WKS): results expire in FIFO order.
	Weakest
	// Weak non-monotonic (WK): expiration order differs from insertion
	// order, but expiration times are known via exp timestamps; no negative
	// tuples are needed.
	Weak
	// Strict non-monotonic (STR): some results expire prematurely and
	// require explicit negative tuples.
	Strict
)

// String abbreviates the pattern as in the paper's plan annotations.
func (p Pattern) String() string {
	switch p {
	case Monotonic:
		return "MONO"
	case Weakest:
		return "WKS"
	case Weak:
		return "WK"
	case Strict:
		return "STR"
	default:
		return fmt.Sprintf("pattern(%d)", int(p))
	}
}

// Max returns the least upper bound of two patterns in the lattice.
func Max(a, b Pattern) Pattern {
	if a > b {
		return a
	}
	return b
}

// MaxOf folds Max over a pattern list; an empty list is Monotonic.
func MaxOf(ps ...Pattern) Pattern {
	out := Monotonic
	for _, p := range ps {
		out = Max(out, p)
	}
	return out
}

// NeedsNegativeTuples reports whether results with this pattern can only be
// maintained with explicit retractions. All other patterns are compatible
// with the direct approach (Section 2.3.2): their expirations are predictable
// from exp timestamps alone.
func (p Pattern) NeedsNegativeTuples() bool { return p == Strict }

// ExpiresFIFO reports whether results expire in exactly the order they were
// produced, allowing O(1) FIFO state maintenance.
func (p Pattern) ExpiresFIFO() bool { return p <= Weakest }
