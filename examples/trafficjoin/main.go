// Traffic join: the paper's Query 1 scenario on the synthetic LBL-style
// trace — correlate ftp connections with the same source address appearing
// on two outgoing links — run under all three execution strategies so their
// identical answers and different costs are visible side by side.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro"
)

func main() {
	const window = 5000 // time units
	schema := repro.TraceSchema()

	build := func() repro.Node {
		left := repro.Stream(0, schema, repro.TimeWindow(window)).
			Where(repro.Col("protocol").EqWithSelectivity(repro.Str("ftp"), 0.04))
		right := repro.Stream(1, schema, repro.TimeWindow(window)).
			Where(repro.Col("protocol").EqWithSelectivity(repro.Str("ftp"), 0.04))
		return left.JoinOn(right, "src")
	}

	recs := repro.GenerateTrace(repro.TraceConfig{
		Links:  2,
		Tuples: 2 * window * 2,
		Seed:   42,
	})

	fmt.Printf("Query 1 (ftp), window %d, %d tuples\n\n", window, len(recs))
	fmt.Printf("%-8s %12s %10s %12s %12s\n", "strategy", "elapsed", "results", "peak state", "touches")
	var last *repro.Engine
	for _, strat := range []repro.Strategy{repro.NT, repro.Direct, repro.UPA} {
		eng, err := repro.Compile(build(), strat, repro.WithLazyInterval(window/20))
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		for _, r := range recs {
			if err := eng.Push(r.Link, r.TS, r.Vals...); err != nil {
				log.Fatal(err)
			}
		}
		n, err := eng.ResultCount()
		if err != nil {
			log.Fatal(err)
		}
		touched, err := eng.Touched()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8v %12v %10d %12d %12d\n",
			strat, time.Since(start).Round(time.Microsecond), n,
			eng.Stats().MaxStateTuples, touched)
		last = eng
	}
	fmt.Println("\nper-operator profile of the UPA run:")
	if err := last.WriteProfile(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAll strategies maintain the same answer; UPA's pattern-matched")
	fmt.Println("state structures make it the cheapest (see EXPERIMENTS.md).")
}
