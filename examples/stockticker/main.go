// Stock ticker: the motivating scenario of Section 4.1 for non-retroactive
// relations. A quote stream joins a symbol→company table. With an NRR,
// deleting a delisted company does not retract previously returned quotes
// and a newly listed symbol does not join with quotes that arrived before
// the listing; with a traditional (retroactive) relation, both happen — and
// force the strict non-monotonic machinery.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	quoteSchema := repro.MustSchema(
		repro.Column{Name: "sym", Kind: repro.KindInt},
		repro.Column{Name: "price", Kind: repro.KindFloat},
	)
	tableSchema := repro.MustSchema(
		repro.Column{Name: "sym", Kind: repro.KindInt},
		repro.Column{Name: "company", Kind: repro.KindString},
	)

	run := func(retroactive bool) {
		var tbl *repro.Table
		if retroactive {
			tbl = repro.NewRelation("companies", tableSchema)
		} else {
			tbl = repro.NewNRR("companies", tableSchema)
		}
		q := repro.Stream(0, quoteSchema, repro.TimeWindow(1000)).
			JoinTable(tbl, []string{"sym"}, []string{"sym"})
		eng, err := repro.Compile(q, repro.UPA)
		if err != nil {
			log.Fatal(err)
		}
		update := func(kind repro.TableUpdate, why string) {
			if err := eng.UpdateTable(tbl, kind); err != nil {
				log.Fatal(err)
			}
			n, _ := eng.ResultCount()
			fmt.Printf("  %-38s → %d joined quotes\n", why, n)
		}
		quote := func(ts int64, sym int64, price float64) {
			if err := eng.Push(0, ts, repro.Int(sym), repro.Float(price)); err != nil {
				log.Fatal(err)
			}
			n, _ := eng.ResultCount()
			fmt.Printf("  quote sym=%d @ t=%-3d                    → %d joined quotes\n", sym, ts, n)
		}

		kind := "non-retroactive relation (NRR)"
		if retroactive {
			kind = "retroactive relation"
		}
		fmt.Printf("%s — pattern %v:\n", kind, eng.Pattern())
		update(repro.TableUpdate{Kind: repro.InsertRow, TS: 1,
			Row: []repro.Value{repro.Int(1), repro.Str("Sun Microsystems")}}, "list SUNW")
		quote(2, 1, 5.25)
		quote(3, 2, 99.0) // unknown symbol: no join
		update(repro.TableUpdate{Kind: repro.InsertRow, TS: 4,
			Row: []repro.Value{repro.Int(2), repro.Str("IBM")}}, "list IBM after its quote arrived")
		update(repro.TableUpdate{Kind: repro.DeleteRow, TS: 5,
			Row: []repro.Value{repro.Int(1), repro.Str("Sun Microsystems")}}, "delist SUNW")
		fmt.Println()
	}

	run(false)
	run(true)
	fmt.Println("The NRR keeps table maintenance out of the retraction business:")
	fmt.Println("its join stays weakest non-monotonic and stores no stream state,")
	fmt.Println("while the retroactive join is strict and must buffer the window.")
}
