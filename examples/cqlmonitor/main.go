// CQL monitor: run an ad-hoc continuous query, written in the CQL-style
// dialect, over live synthetic traffic and watch the answer evolve — the
// "DSMS console" experience. Pass a query as the first argument, e.g.:
//
//	go run ./examples/cqlmonitor "SELECT protocol, COUNT(*) FROM S0 [RANGE 500] GROUP BY protocol"
//	go run ./examples/cqlmonitor "SELECT * FROM S0 [RANGE 300] EXCEPT S1 [RANGE 300] ON src"
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	query := "SELECT DISTINCT src FROM S0 [RANGE 400]"
	if len(os.Args) > 1 {
		query = os.Args[1]
	}
	const links = 2

	cat := repro.Catalog{Streams: map[string]repro.StreamDef{}}
	for i := 0; i < links; i++ {
		cat.Streams[fmt.Sprintf("S%d", i)] = repro.StreamDef{ID: i, Schema: repro.TraceSchema()}
	}
	q, err := repro.ParseQuery(query, cat)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := repro.Compile(q, repro.UPA, repro.WithOptimizer())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\n\n", query)
	if err := eng.Explain(os.Stdout); err != nil {
		log.Fatal(err)
	}

	reads := map[int]bool{}
	for _, id := range eng.Streams() {
		reads[id] = true
	}
	recs := repro.GenerateTrace(repro.TraceConfig{Links: links, Tuples: 2000, Seed: 11, SrcHosts: 40})
	const reportEvery = 200
	fmt.Println("\n   time   results   emitted   retracted")
	for i, r := range recs {
		if !reads[r.Link] {
			continue // the query does not reference this link
		}
		if err := eng.Push(r.Link, r.TS, r.Vals...); err != nil {
			log.Fatal(err)
		}
		if (i+1)%reportEvery == 0 {
			n, err := eng.ResultCount()
			if err != nil {
				log.Fatal(err)
			}
			st := eng.Stats()
			fmt.Printf("%7d %9d %9d %11d\n", r.TS, n, st.Emitted, st.Retracted)
		}
	}
	rows, err := eng.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal answer (%d rows", len(rows))
	if len(rows) > 10 {
		fmt.Printf(", first 10")
		rows = rows[:10]
	}
	fmt.Println("):")
	for _, row := range rows {
		fmt.Println("  ", row)
	}
}
