// Distinct IPs: the paper's Query 2 scenario — maintain the distinct source
// addresses seen on a link during the last window. Under UPA the improved δ
// operator (Section 5.3.1) answers it with state bounded by twice the output
// size, never storing the raw input; this example surfaces that space
// difference against the literature implementation used by DIRECT.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const window = 2000
	schema := repro.TraceSchema()

	build := func() repro.Node {
		return repro.Stream(0, schema, repro.TimeWindow(window)).
			Select("src").
			Distinct()
	}

	recs := repro.GenerateTrace(repro.TraceConfig{
		Links:    1,
		Tuples:   3 * window,
		SrcHosts: 300, // heavy duplication within the window
		Seed:     7,
	})

	fmt.Printf("Query 2: distinct source IPs, window %d, %d tuples, 300 hosts\n\n", window, len(recs))
	for _, strat := range []repro.Strategy{repro.Direct, repro.UPA} {
		eng, err := repro.Compile(build(), strat)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range recs {
			if err := eng.Push(r.Link, r.TS, r.Vals...); err != nil {
				log.Fatal(err)
			}
		}
		n, err := eng.ResultCount()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8v distinct now: %4d   peak stored tuples: %6d   (input tuples in window: ~%d)\n",
			strat, n, eng.Stats().MaxStateTuples, window)
	}
	fmt.Println("\nDIRECT stores the whole input to find replacements when a")
	fmt.Println("representative expires; δ keeps only the output plus, per value,")
	fmt.Println("the single longest-lived duplicate (\"auxiliary output state\").")
}
