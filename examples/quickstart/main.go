// Quickstart: a sliding-window join of two streams, compiled under the
// update-pattern-aware strategy, with the materialized result observed as
// the windows slide.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	schema := repro.MustSchema(
		repro.Column{Name: "src", Kind: repro.KindInt},
		repro.Column{Name: "proto", Kind: repro.KindString},
	)

	// Correlate ftp traffic across two links within the last 100 time units.
	left := repro.Stream(0, schema, repro.TimeWindow(100)).
		Where(repro.Col("proto").EqStr("ftp"))
	right := repro.Stream(1, schema, repro.TimeWindow(100)).
		Where(repro.Col("proto").EqStr("ftp"))
	query := left.JoinOn(right, "src")

	eng, err := repro.Compile(query, repro.UPA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("annotated plan:")
	if err := eng.Explain(os.Stdout); err != nil {
		log.Fatal(err)
	}

	push := func(stream int, ts int64, src int64, proto string) {
		if err := eng.Push(stream, ts, repro.Int(src), repro.Str(proto)); err != nil {
			log.Fatal(err)
		}
	}

	push(0, 1, 7, "ftp")
	push(1, 2, 7, "ftp") // joins with the tuple above
	push(0, 3, 9, "http")
	push(1, 4, 9, "ftp") // no ftp counterpart for src 9

	rows, err := eng.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nresults at t=4 (%d):\n", len(rows))
	for _, r := range rows {
		fmt.Println("  ", r)
	}

	// Slide the windows past the first tuples: the join result expires.
	if err := eng.Advance(101); err != nil {
		log.Fatal(err)
	}
	n, err := eng.ResultCount()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nresults at t=101 after the window slid: %d\n", n)
	fmt.Printf("stats: %+v\n", eng.Stats())
}
