// Firewall negation: the paper's Query 3/5 scenario — hosts sending on link
// A that have NOT appeared on link B within the window, further joined with
// ftp traffic on a third link (Query 5). Negation is the canonical strict
// non-monotonic operator: results can be retracted before their windows
// expire, which this example makes visible through the emission stream, and
// it demonstrates the two plan rewritings of Figure 6.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	schema := repro.TraceSchema()
	const window = 100

	// Query 3: link-0 sources not seen on link 1.
	suspicious := repro.Stream(0, schema, repro.TimeWindow(window)).
		Except(repro.Stream(1, schema, repro.TimeWindow(window)),
			[]string{"src"}, []string{"src"})

	var events []string
	eng, err := repro.Compile(suspicious, repro.UPA,
		repro.WithOnEmit(func(t repro.Tuple) {
			sign := "+"
			if t.Neg {
				sign = "-"
			}
			events = append(events, fmt.Sprintf("t=%d %s src=%v", t.TS, sign, t.Vals[4]))
		}))
	if err != nil {
		log.Fatal(err)
	}

	push := func(stream int, ts int64, src int64) {
		vals := []repro.Value{
			repro.Int(ts), repro.Float(1), repro.Str("ftp"), repro.Int(100),
			repro.Int(src), repro.Int(int64(1000 + stream)),
		}
		if err := eng.Push(stream, ts, vals...); err != nil {
			log.Fatal(err)
		}
	}

	push(0, 1, 42) // 42 on A only → suspicious
	push(0, 2, 17) // 17 on A only → suspicious
	push(1, 3, 42) // 42 appears on B → retract it (negative tuple!)
	if err := eng.Advance(103); err != nil {
		log.Fatal(err) // B's 42 expires at 103 → 42 would requalify, but A's copy expired at 101
	}

	fmt.Println("emission stream (negative tuples are the strict non-monotonic signature):")
	for _, e := range events {
		fmt.Println("  ", e)
	}
	n, _ := eng.ResultCount()
	fmt.Printf("suspicious hosts now: %d\n\n", n)

	// Query 5: the same negation joined with ftp traffic on link 2, in both
	// Figure 6 rewritings. Both compute the same answer; their edge
	// annotations differ.
	negFirst := repro.Stream(0, schema, repro.TimeWindow(window)).
		Except(repro.Stream(1, schema, repro.TimeWindow(window)), []string{"src"}, []string{"src"}).
		JoinOn(repro.Stream(2, schema, repro.TimeWindow(window)).
			Where(repro.Col("protocol").EqStr("ftp")), "src")

	joinFirst := repro.Stream(0, schema, repro.TimeWindow(window)).
		JoinOn(repro.Stream(2, schema, repro.TimeWindow(window)).
			Where(repro.Col("protocol").EqStr("ftp")), "src").
		Except(repro.Stream(1, schema, repro.TimeWindow(window)), []string{"src"}, []string{"src"})

	for name, q := range map[string]repro.Node{"negation push-down": negFirst, "negation pull-up": joinFirst} {
		eng, err := repro.Compile(q, repro.UPA)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Query 5, %s:\n", name)
		if err := eng.Explain(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}
