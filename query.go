package repro

import (
	"fmt"

	"repro/internal/operator"
	"repro/internal/plan"
	"repro/internal/tuple"
	"repro/internal/window"
)

// Node is a continuous-query plan under construction. Builder methods
// resolve column names against the node's schema and accumulate errors,
// which Compile surfaces; a zero Node is invalid.
type Node struct {
	n      *plan.Node
	schema *tuple.Schema
	err    error
}

// Err returns the first construction error, if any.
func (q Node) Err() error { return q.err }

// Stream starts a plan from base stream id bounded by the window spec.
func Stream(id int, schema *Schema, spec window.Spec) Node {
	if schema == nil {
		return Node{err: fmt.Errorf("repro: stream %d has nil schema", id)}
	}
	return Node{n: plan.NewSource(id, spec, schema), schema: schema}
}

// Where filters by a condition over named columns.
func (q Node) Where(c Cond) Node {
	if q.err != nil {
		return q
	}
	pred, err := c.resolve(q.schema)
	if err != nil {
		return Node{err: err}
	}
	return Node{n: plan.NewSelect(q.n, pred), schema: q.schema}
}

// Select projects onto the named columns (duplicates preserved).
func (q Node) Select(cols ...string) Node {
	if q.err != nil {
		return q
	}
	idx, err := q.resolveCols(cols)
	if err != nil {
		return Node{err: err}
	}
	out, err := q.schema.Project(idx)
	if err != nil {
		return Node{err: err}
	}
	return Node{n: plan.NewProject(q.n, idx...), schema: out}
}

// JoinOn equijoins q with other on the named columns, which must exist in
// both schemas. The result schema is q's columns followed by other's (name
// collisions on the right are prefixed).
func (q Node) JoinOn(other Node, cols ...string) Node {
	if q.err != nil {
		return q
	}
	if other.err != nil {
		return other
	}
	l, err := q.resolveCols(cols)
	if err != nil {
		return Node{err: err}
	}
	r, err := other.resolveCols(cols)
	if err != nil {
		return Node{err: err}
	}
	return Node{
		n:      plan.NewJoin(q.n, other.n, l, r),
		schema: q.schema.Concat(other.schema),
	}
}

// Distinct eliminates duplicate rows (over the full tuple).
func (q Node) Distinct() Node {
	if q.err != nil {
		return q
	}
	return Node{n: plan.NewDistinct(q.n), schema: q.schema}
}

// Except removes rows whose named attribute values are matched, copy for
// copy, by rows of other — the multiset negation of Section 2.1
// (Equation 1). leftCols name q's attributes; rightCols other's (pass the
// same names twice for a natural anti-match).
func (q Node) Except(other Node, leftCols, rightCols []string) Node {
	if q.err != nil {
		return q
	}
	if other.err != nil {
		return other
	}
	l, err := q.resolveCols(leftCols)
	if err != nil {
		return Node{err: err}
	}
	r, err := other.resolveCols(rightCols)
	if err != nil {
		return Node{err: err}
	}
	return Node{n: plan.NewNegate(q.n, other.n, l, r), schema: q.schema}
}

// IntersectWith keeps rows present in both inputs (multiset semantics); the
// schemas must be layout-equal.
func (q Node) IntersectWith(other Node) Node {
	if q.err != nil {
		return q
	}
	if other.err != nil {
		return other
	}
	return Node{n: plan.NewIntersect(q.n, other.n), schema: q.schema}
}

// Union merges two layout-equal inputs.
func Union(a, b Node) Node {
	if a.err != nil {
		return a
	}
	if b.err != nil {
		return b
	}
	return Node{n: plan.NewUnion(a.n, b.n), schema: a.schema}
}

// Agg is one aggregate specification for GroupBy.
type Agg struct {
	kind operator.AggKind
	col  string
}

// CountAll counts rows per group.
func CountAll() Agg { return Agg{kind: operator.Count} }

// SumOf sums the named column.
func SumOf(col string) Agg { return Agg{kind: operator.Sum, col: col} }

// AvgOf averages the named column.
func AvgOf(col string) Agg { return Agg{kind: operator.Avg, col: col} }

// MinOf tracks the minimum of the named column.
func MinOf(col string) Agg { return Agg{kind: operator.Min, col: col} }

// MaxOf tracks the maximum of the named column.
func MaxOf(col string) Agg { return Agg{kind: operator.Max, col: col} }

// GroupBy aggregates per group of the named columns. New results replace
// previous results for the same group (the result view is keyed). GroupBy
// must be the final operator of a query.
func (q Node) GroupBy(groupCols []string, aggs ...Agg) Node {
	if q.err != nil {
		return q
	}
	idx, err := q.resolveCols(groupCols)
	if err != nil {
		return Node{err: err}
	}
	specs := make([]operator.AggSpec, len(aggs))
	for i, a := range aggs {
		spec := operator.AggSpec{Kind: a.kind}
		if a.kind != operator.Count {
			c := q.schema.Index(a.col)
			if c < 0 {
				return Node{err: fmt.Errorf("repro: no column %q in %s", a.col, q.schema)}
			}
			spec.Col = c
		}
		specs[i] = spec
	}
	n := plan.NewGroupBy(q.n, idx, specs...)
	// Schema derivation is repeated by Annotate; reuse a lightweight probe.
	return Node{n: n, schema: nil}
}

// JoinTable joins the stream with a table on pairwise named columns. For an
// NRR the join is non-retroactive (table updates affect only later
// arrivals); for a Relation it is retroactive and strict.
func (q Node) JoinTable(tbl *Table, streamCols, tableCols []string) Node {
	if q.err != nil {
		return q
	}
	sIdx, err := q.resolveCols(streamCols)
	if err != nil {
		return Node{err: err}
	}
	tIdx := make([]int, len(tableCols))
	for i, c := range tableCols {
		tIdx[i] = tbl.Schema().Index(c)
		if tIdx[i] < 0 {
			return Node{err: fmt.Errorf("repro: no column %q in table %s", c, tbl.Name())}
		}
	}
	var n *plan.Node
	if tbl.Retroactive() {
		n = plan.NewRelJoin(q.n, tbl, sIdx, tIdx)
	} else {
		n = plan.NewNRRJoin(q.n, tbl, sIdx, tIdx)
	}
	return Node{n: n, schema: q.schema.Concat(tbl.Schema())}
}

func (q Node) resolveCols(cols []string) ([]int, error) {
	if q.schema == nil {
		return nil, fmt.Errorf("repro: node has no schema (GroupBy must be last)")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("repro: no columns named")
	}
	idx := make([]int, len(cols))
	for i, c := range cols {
		idx[i] = q.schema.Index(c)
		if idx[i] < 0 {
			return nil, fmt.Errorf("repro: no column %q in %s", c, q.schema)
		}
	}
	return idx, nil
}
