package repro_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro"
)

// connSchema mirrors the paper's connection records: source, destination,
// protocol.
func connSchema() *repro.Schema {
	return repro.MustSchema(
		repro.Column{Name: "src", Kind: repro.KindInt},
		repro.Column{Name: "dst", Kind: repro.KindInt},
		repro.Column{Name: "proto", Kind: repro.KindString},
	)
}

// paperQueries builds facade equivalents of the Section 6 experimental
// queries Q1–Q5 (join, duplicate elimination, negation, distinct-join, and
// negation-below-join), each a fresh Node per call.
func paperQueries(win int64) map[string]func() repro.Node {
	sch := connSchema()
	w := func(link int) repro.Node { return repro.Stream(link, sch, repro.TimeWindow(win)) }
	sel := func(link int, proto string) repro.Node {
		return w(link).Where(repro.Col("proto").EqStr(proto))
	}
	return map[string]func() repro.Node{
		"q1-join": func() repro.Node {
			return sel(0, "ftp").JoinOn(sel(1, "ftp"), "src")
		},
		"q2-distinct": func() repro.Node {
			return w(0).Select("src").Distinct()
		},
		"q3-negation": func() repro.Node {
			return w(0).Except(w(1), []string{"src"}, []string{"src"})
		},
		"q4-distinct-join": func() repro.Node {
			d := func(link int) repro.Node { return w(link).Select("src").Distinct() }
			return d(0).JoinOn(d(1), "src")
		},
		"q5-pushdown": func() repro.Node {
			neg := w(0).Except(w(1), []string{"src"}, []string{"src"})
			return neg.JoinOn(sel(2, "ftp"), "src")
		},
	}
}

// bagOf renders rows as a sorted multiset fingerprint; Snapshot order is
// unspecified, so conformance is bag equality.
func bagOf(rows []repro.Tuple) string {
	keys := make([]string, len(rows))
	for i, t := range rows {
		keys[i] = fmt.Sprint(t.Vals)
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

func pushConn(t *testing.T, push func(stream int, ts int64, vals ...repro.Value) error, n int) {
	t.Helper()
	protos := []string{"ftp", "telnet", "smtp", "http"}
	for i := 0; i < n; i++ {
		ts := int64(i + 1)
		err := push(i%3, ts,
			repro.Int(int64(i*7%13)), repro.Int(int64(i*3%7)), repro.Str(protos[i%4]))
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestRegistryConformance registers all five paper queries on one registry
// per strategy and checks every query's view is bag-equal to a standalone
// engine compiled from the same query — the tentpole's exactness contract.
func TestRegistryConformance(t *testing.T) {
	for _, strat := range []repro.Strategy{repro.NT, repro.Direct, repro.UPA} {
		t.Run(strat.String(), func(t *testing.T) {
			reg, err := repro.NewRegistry()
			if err != nil {
				t.Fatal(err)
			}
			defer reg.Close()
			builders := paperQueries(40)
			names := make([]string, 0, len(builders))
			for name := range builders {
				names = append(names, name)
			}
			sort.Strings(names)
			handles := map[string]*repro.Query{}
			twins := map[string]*repro.Engine{}
			for _, name := range names {
				h, err := reg.Register(builders[name](), strat, repro.WithQueryName(name))
				if err != nil {
					t.Fatalf("register %s: %v", name, err)
				}
				handles[name] = h
				twin, err := repro.Compile(builders[name](), strat)
				if err != nil {
					t.Fatalf("compile twin %s: %v", name, err)
				}
				twins[name] = twin
			}
			if s := reg.Sharing(); s.SharedSources == 0 {
				t.Fatalf("paper queries share no window sources: %+v", s)
			}
			pushConn(t, func(stream int, ts int64, vals ...repro.Value) error {
				if err := reg.Push(stream, ts, vals...); err != nil {
					return err
				}
				for _, tw := range twins {
					ok := false
					for _, id := range tw.Streams() {
						if id == stream {
							ok = true
						}
					}
					if !ok {
						continue
					}
					if err := tw.Push(stream, ts, vals...); err != nil {
						return err
					}
				}
				return nil
			}, 120)
			for _, name := range names {
				rows, err := handles[name].Snapshot()
				if err != nil {
					t.Fatalf("%s snapshot: %v", name, err)
				}
				want, err := twins[name].Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				if got, wantBag := bagOf(rows), bagOf(want); got != wantBag {
					t.Errorf("%s (%v) diverged from standalone\ngot:\n%s\nwant:\n%s",
						name, strat, got, wantBag)
				}
			}
		})
	}
}

// TestRegistryFacadeChurn randomly registers, unregisters, and pushes. One
// pinned query registered cold at the start must keep tracking a standalone
// twin fed the same arrivals no matter what churns around it (queries
// registered later adopt its warm shared state, so only the cold-start
// query has a meaningful twin), and draining the registry must free all
// state.
func TestRegistryFacadeChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	reg, err := repro.NewRegistry()
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	builders := paperQueries(30)
	names := make([]string, 0, len(builders))
	for name := range builders {
		names = append(names, name)
	}
	sort.Strings(names)
	// The pinned query reads all three streams, so every push reaches both
	// the registry and the twin.
	pinned, err := reg.Register(builders["q5-pushdown"](), repro.UPA, repro.WithQueryName("pinned"))
	if err != nil {
		t.Fatal(err)
	}
	twin, err := repro.Compile(builders["q5-pushdown"](), repro.UPA)
	if err != nil {
		t.Fatal(err)
	}
	var live []*repro.Query
	ts := int64(0)
	protos := []string{"ftp", "telnet", "smtp", "http"}
	for step := 0; step < 120; step++ {
		switch {
		case rng.Intn(3) == 0:
			name := names[rng.Intn(len(names))]
			h, err := reg.Register(builders[name](), repro.UPA)
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, h)
		case rng.Intn(2) == 0 && len(live) > 0:
			i := rng.Intn(len(live))
			if _, err := reg.Unregister(live[i]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
		default:
			for k := 0; k < 4; k++ {
				ts++
				vals := []repro.Value{
					repro.Int(ts * 7 % 13), repro.Int(ts * 3 % 7),
					repro.Str(protos[int(ts)%4]),
				}
				if err := reg.Push(int(ts)%3, ts, vals...); err != nil {
					t.Fatal(err)
				}
				if err := twin.Push(int(ts)%3, ts, vals...); err != nil {
					t.Fatal(err)
				}
			}
		}
		if step%17 == 0 {
			rows, err := pinned.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			want, err := twin.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if got, wantBag := bagOf(rows), bagOf(want); got != wantBag {
				t.Fatalf("step %d: pinned query diverged from twin\ngot:\n%s\nwant:\n%s",
					step, got, wantBag)
			}
		}
	}
	for _, h := range live {
		if _, err := reg.Unregister(h); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := reg.Unregister(pinned); err != nil {
		t.Fatal(err)
	}
	if n := len(reg.Queries()); n != 0 {
		t.Fatalf("%d queries left after draining", n)
	}
	left, err := reg.StateTuples()
	if err != nil {
		t.Fatal(err)
	}
	if left != 0 {
		t.Fatalf("%d state tuples leaked after draining the registry", left)
	}
}
