// Command upaquery runs one of the paper's experimental queries over a
// trace (a CSV file from tracegen, or a freshly generated one) under a
// chosen execution strategy, printing the annotated plan, progress, and
// final statistics.
//
// Usage:
//
//	upaquery -query q1-ftp -strategy upa -window 5000
//	upaquery -query q1-ftp -strategy upa -shards 4
//	upaquery -query q3 -strategy nt -window 2000 -trace trace.csv
//	upaquery -query q3 -strategy upa -explain
//	upaquery -query q3 -strategy upa -analyze
//	upaquery -cql "SELECT DISTINCT src FROM S0 [RANGE 2000]" -links 1
//	upaquery -query q3 -strategy nt -metrics-addr :9090 -trace-out events.jsonl
//	upaquery -query q1-ftp -strategy upa -latency
//	upaquery -query q1-ftp -strategy upa -health -slo-p99 5ms
//	upaquery -query q1-ftp -trace-out spans.jsonl -trace-sample 1000
//	upaquery -query q1-ftp -checkpoint-dir ./state -checkpoint-every 100000
//	upaquery -list
//
// -explain prints the annotated physical plan (per-operator update-pattern
// class, state structures, partition-key status) and exits without running;
// -analyze runs the trace and then prints the same tree with each
// operator's live counters (EXPLAIN ANALYZE). With -metrics-addr the run
// serves live Prometheus text-format metrics at /metrics (plus
// /metrics.json, /debug/vars, /debug/pprof/, and the running plan at
// /debug/plan?analyze=1) while it is in progress; with -trace-out every
// typed engine event (arrivals, emissions, retractions, window expirations,
// maintenance passes) is written as JSON Lines.
//
// -latency records every output delta's ingest→emit latency and prints a
// percentile table plus the update-pattern conformance verdict (declared vs
// observed class per operator) at exit.
//
// -health runs the self-monitoring subsystem during the run: a history
// sampler over the engine's registry plus the built-in health rules
// (pattern violations, premature expirations, shard backpressure, staleness
// lag, checkpoint age, and — with -slo-p99 — the delta-latency p99 SLO).
// Alert transitions print to stderr as they fire, a final per-rule report
// prints at exit, and a CRIT overall verdict exits with code 2. With
// -metrics-addr the live status is served at /debug/health (JSON, or HTML
// with ?format=html) and retained series windows at
// /debug/history?series=NAME. -trace-sample N additionally traces
// one in N arrivals through the plan as per-operator EvDeltaSpan events on
// the -trace-out sink; keep N large on hot streams.
//
// With -checkpoint-dir the run writes a versioned binary checkpoint
// (atomically, via temp file + rename) every -checkpoint-every tuples and
// once at the end; when the directory already holds a checkpoint, the run
// restores it and resumes the trace where the previous process stopped (the
// synthetic trace is deterministic, so skipping the restored arrival count
// replays the exact remainder). -max-tuples bounds the run so a later
// invocation can finish it, and -dump-view writes the sorted final answer
// for diffing two runs.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/cql"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/trace"
	"repro/internal/tuple"
)

var queryNames = map[string]bench.Query{
	"q1-ftp":      bench.Q1FTP,
	"q1-telnet":   bench.Q1Telnet,
	"q2":          bench.Q2Distinct,
	"q2-pairs":    bench.Q2Pairs,
	"q3":          bench.Q3Negation,
	"q3-disjoint": bench.Q3Disjoint,
	"q4":          bench.Q4DistinctJoin,
	"q5-pushdown": bench.Q5PushDown,
	"q5-pullup":   bench.Q5PullUp,
	"q6-groupby":  bench.Q6GroupBy,
}

// multiFlag collects repeated occurrences of one flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	var queries multiFlag
	flag.Var(&queries, "query", "query to run: a name from -list, or name=CQL for a named ad-hoc query; repeat the flag to run several queries on one shared registry (default q1-ftp)")
	cqlText := flag.String("cql", "", "run a CQL query instead (streams S0..S{links-1} carry the trace schema)")
	links := flag.Int("links", 2, "number of trace links for -cql queries")
	strategy := flag.String("strategy", "upa", "execution strategy: nt, direct, or upa")
	windowSize := flag.Int64("window", 5000, "sliding window size in time units")
	duration := flag.Int64("duration", 0, "trace duration in time units (default 2x window)")
	traceFile := flag.String("trace", "", "CSV trace file (default: generate synthetically)")
	partitions := flag.Int("partitions", 10, "state-buffer partitions")
	shards := flag.Int("shards", 1, "run key-partitioned across this many parallel shards (falls back to 1 with a reason when the plan has no routing key)")
	metricsAddr := flag.String("metrics-addr", "", "serve live metrics/pprof on this address (e.g. :9090)")
	traceOut := flag.String("trace-out", "", "write typed engine events as JSON Lines to this file")
	progressEvery := flag.Duration("progress", time.Second, "progress-line interval (0 disables)")
	explain := flag.Bool("explain", false, "print the annotated physical plan (EXPLAIN) and exit")
	analyze := flag.Bool("analyze", false, "after the run, print the plan with live per-operator counters (EXPLAIN ANALYZE)")
	latency := flag.Bool("latency", false, "record ingest-to-emit delta latency and print percentiles plus the conformance verdict at exit")
	health := flag.Bool("health", false, "run the self-monitoring health subsystem (built-in rules, alert log on stderr, final report; exit code 2 on CRIT)")
	sloP99 := flag.Duration("slo-p99", 0, "delta-latency p99 SLO for the built-in health rule (e.g. 5ms; implies -health)")
	healthInterval := flag.Duration("health-interval", 200*time.Millisecond, "health sampling cadence")
	traceSample := flag.Int("trace-sample", 0, "trace one in N arrivals as per-operator spans (EvDeltaSpan events on -trace-out; 0 disables)")
	checkpointDir := flag.String("checkpoint-dir", "", "checkpoint into this directory and resume from an existing checkpoint on start")
	checkpointEvery := flag.Int("checkpoint-every", 0, "also checkpoint every N processed tuples (0: only a final checkpoint)")
	maxTuples := flag.Int("max-tuples", 0, "stop after this many trace records (0: the whole trace)")
	dumpView := flag.String("dump-view", "", "after the run, write the sorted result view to this file")
	list := flag.Bool("list", false, "list query names and exit")
	flag.Parse()

	if *list {
		names := make([]string, 0, len(queryNames))
		for name := range queryNames {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			q := queryNames[name]
			fmt.Printf("%-12s %s (%d links)\n", name, q, q.Links())
		}
		return
	}
	var err error
	if len(queries) > 1 || (len(queries) == 1 && strings.Contains(queries[0], "=")) {
		err = runMulti(queries, *links, *strategy, *windowSize, *duration, *traceFile,
			*partitions, *progressEvery, *explain, *analyze, *dumpView)
	} else {
		single := "q1-ftp"
		if len(queries) == 1 {
			single = queries[0]
		}
		err = run(single, *cqlText, *links, *strategy, *windowSize, *duration, *traceFile,
			*partitions, *shards, *metricsAddr, *traceOut, *progressEvery, *explain, *analyze,
			*latency, *health, *sloP99, *healthInterval, *traceSample, *checkpointDir,
			*checkpointEvery, *maxTuples, *dumpView)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "upaquery:", err)
		if errors.Is(err, errHealthCrit) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// errHealthCrit maps a CRIT final health verdict to exit code 2, so
// scripted callers can tell "the run failed" from "the run finished but
// the engine is unhealthy".
var errHealthCrit = errors.New("health is CRIT")

func run(queryName, cqlText string, cqlLinks int, strategyName string, windowSize, duration int64,
	traceFile string, partitions, shards int, metricsAddr, traceOut string, progressEvery time.Duration,
	explain, analyze, latency, healthOn bool, sloP99, healthInterval time.Duration, traceSample int,
	checkpointDir string, checkpointEvery, maxTuples int, dumpView string) error {
	healthOn = healthOn || sloP99 > 0
	var q bench.Query
	var root *plan.Node
	nLinks := 0
	if cqlText != "" {
		cat := cql.Catalog{Streams: map[string]cql.StreamDef{}}
		for i := 0; i < cqlLinks; i++ {
			cat.Streams[fmt.Sprintf("S%d", i)] = cql.StreamDef{ID: i, Schema: trace.Schema()}
		}
		var err error
		root, err = cql.Parse(cqlText, cat)
		if err != nil {
			return err
		}
		nLinks = cqlLinks
	} else {
		var ok bool
		q, ok = queryNames[strings.ToLower(queryName)]
		if !ok {
			return fmt.Errorf("unknown query %q (use -list)", queryName)
		}
		nLinks = q.Links()
	}
	var strat plan.Strategy
	switch strings.ToLower(strategyName) {
	case "nt":
		strat = plan.NT
	case "direct":
		strat = plan.Direct
	case "upa":
		strat = plan.UPA
	default:
		return fmt.Errorf("unknown strategy %q (want nt, direct, or upa)", strategyName)
	}
	if duration <= 0 {
		duration = 2 * windowSize
	}

	if root == nil {
		root = bench.BuildPlan(q, windowSize)
	}
	if err := plan.Annotate(root, bench.PlanStats(q, 0)); err != nil {
		return err
	}
	fmt.Printf("plan under %v:\n%s", strat, root)
	fmt.Printf("estimated cost: NT=%.0f DIRECT=%.0f UPA=%.0f\n\n",
		plan.Cost(root, plan.NT), plan.Cost(root, plan.Direct), plan.Cost(root, plan.UPA))

	phys, err := plan.Build(root, strat, plan.Options{Partitions: partitions})
	if err != nil {
		return err
	}
	if explain {
		return plan.Explain(phys).WriteText(os.Stdout)
	}
	lazy := windowSize / 20
	if lazy < 1 {
		lazy = 1
	}
	cfg := exec.Config{EagerInterval: 1, LazyInterval: lazy}

	var reg *obs.Registry
	if metricsAddr != "" || latency || healthOn {
		// -latency and -health need the registry too: delta-latency
		// histograms (like all wall-clock instruments) record only when
		// Config.Metrics is set, and health rules read registered series.
		reg = obs.NewRegistry()
		cfg.Metrics = reg
	}
	cfg.TraceSampleEvery = traceSample
	var tracer *obs.Tracer
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		tracer = obs.NewTracer(obs.NewJSONLSink(f))
		cfg.Tracer = tracer
	}

	var (
		seq *exec.Engine
		sh  *exec.Sharded
	)
	if shards > 1 {
		sh, err = exec.NewSharded(phys, cfg, shards)
		if err != nil {
			return err
		}
		defer sh.Close()
		if reason := sh.FallbackReason(); reason != "" {
			fmt.Fprintf(os.Stderr, "sharding fell back to sequential: %s\n", reason)
		} else {
			fmt.Fprintf(os.Stderr, "running key-partitioned across %d shards\n", sh.Shards())
		}
	} else {
		seq, err = exec.New(phys, cfg)
		if err != nil {
			return err
		}
	}
	var healthMon *obs.Health
	if healthOn {
		hist := obs.NewHistory(reg, obs.HistoryConfig{Interval: healthInterval})
		hist.BeforeSample(obs.RegisterProcessMetrics(reg))
		slo := exec.HealthSLO{DeltaP99: sloP99}
		var rules []obs.Rule
		if sh != nil {
			rules = sh.HealthRules(slo)
		} else {
			rules = seq.HealthRules(slo)
		}
		healthMon = obs.NewHealth(hist, rules...)
		healthMon.AddSink(obs.NewLogAlertSink(os.Stderr))
		// Baseline tick before ingest: each series' first sample records a
		// zero delta, so without this a run shorter than the sampling
		// interval would fold its whole activity into the baseline and the
		// final report would see nothing.
		healthMon.Tick()
		healthMon.Start()
		defer healthMon.Stop()
	}
	explainTree := func(an bool) *plan.ExplainTree {
		if sh != nil {
			return sh.Explain(an)
		}
		return seq.Explain(an)
	}
	profiles := func() []exec.OpProfile {
		if sh != nil {
			return sh.Profile()
		}
		return seq.Profile()
	}
	if metricsAddr != "" {
		// The plan page reads only atomic instruments, so serving it while
		// the run is in flight is safe.
		planPage := obs.Page{
			Path:  "/debug/plan",
			Title: "EXPLAIN of the running plan (?analyze=1, ?format=dot)",
			Handler: func(w http.ResponseWriter, r *http.Request) {
				t := explainTree(r.URL.Query().Get("analyze") != "")
				if r.URL.Query().Get("format") == "dot" {
					w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
					_ = t.WriteDOT(w)
					return
				}
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				_ = t.WriteText(w)
			},
		}
		confPage := obs.Page{
			Path:  "/debug/conformance",
			Title: "update-pattern conformance: declared vs observed per operator",
			Handler: func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				_ = exec.WriteConformance(w, profiles())
			},
		}
		pages := []obs.Page{planPage, confPage,
			obs.HealthPage(healthMon), obs.HistoryPage(healthMon.History())}
		srv, err := obs.Serve(metricsAddr, reg, pages...)
		if err != nil {
			return fmt.Errorf("metrics endpoint: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "serving metrics on http://%s/metrics (plan at /debug/plan, conformance at /debug/conformance, health at /debug/health, history at /debug/history, pprof at /debug/pprof/)\n", srv.Addr())
	}

	engStats := func() exec.Stats {
		if sh != nil {
			return sh.Stats()
		}
		return seq.Stats()
	}
	ckptFile := ""
	if checkpointDir != "" {
		if err := os.MkdirAll(checkpointDir, 0o755); err != nil {
			return err
		}
		ckptFile = filepath.Join(checkpointDir, "checkpoint.ckpt")
	}
	// writeCheckpoint snapshots atomically: a crash mid-write leaves the
	// previous checkpoint intact, never a truncated one.
	writeCheckpoint := func() error {
		tmp := ckptFile + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			return err
		}
		if sh != nil {
			err = sh.Checkpoint(f)
		} else {
			err = seq.Checkpoint(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			os.Remove(tmp)
			return err
		}
		return os.Rename(tmp, ckptFile)
	}
	skip := 0
	if ckptFile != "" {
		if f, err := os.Open(ckptFile); err == nil {
			if sh != nil {
				err = sh.Restore(f)
			} else {
				err = seq.Restore(f)
			}
			f.Close()
			if err != nil {
				return fmt.Errorf("resume from %s: %w", ckptFile, err)
			}
			skip = int(engStats().Arrivals)
			fmt.Fprintf(os.Stderr, "resumed from %s at %d arrivals\n", ckptFile, skip)
		} else if !os.IsNotExist(err) {
			return err
		}
	}

	var recs []trace.Record
	if traceFile != "" {
		f, err := os.Open(traceFile)
		if err != nil {
			return err
		}
		recs, err = trace.ReadCSV(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		recs = trace.Generate(trace.Config{
			Links:           nLinks,
			Tuples:          int(duration) * nLinks,
			Seed:            42,
			DisjointSources: cqlText == "" && q.DisjointSources(),
		})
	}

	if maxTuples > 0 && len(recs) > maxTuples {
		recs = recs[:maxTuples]
	}
	if skip > 0 {
		if skip > len(recs) {
			skip = len(recs)
		}
		recs = recs[skip:]
	}
	// periodicCheckpoint fires when the cumulative arrival count (including
	// restored arrivals) crosses a -checkpoint-every boundary.
	periodicCheckpoint := func(prev, now int) error {
		if ckptFile == "" || checkpointEvery <= 0 || prev/checkpointEvery == now/checkpointEvery {
			return nil
		}
		return writeCheckpoint()
	}

	start := time.Now()
	prog := newProgress(start, progressEvery)
	if sh != nil {
		batch := make([]exec.Arrival, 0, 256)
		flushed := skip
		for i, r := range recs {
			if r.Link >= nLinks {
				return fmt.Errorf("trace record on link %d, but query reads %d links", r.Link, nLinks)
			}
			batch = append(batch, exec.Arrival{Stream: r.Link, TS: r.TS, Vals: r.Vals})
			if len(batch) == cap(batch) {
				if err := sh.PushBatch(batch); err != nil {
					return err
				}
				batch = batch[:0]
				prog.maybe(i+1, sh)
				if err := periodicCheckpoint(flushed, skip+i+1); err != nil {
					return err
				}
				flushed = skip + i + 1
			}
		}
		if err := sh.PushBatch(batch); err != nil {
			return err
		}
		if err := sh.Sync(); err != nil {
			return err
		}
	} else {
		// Sequential ingest goes through the same batched fast path as the
		// sharded executor: whole same-(stream, timestamp) runs flow down the
		// plan with pooled emit buffers instead of per-tuple Process calls.
		// Progress and periodic checkpoints land on batch boundaries, the
		// same granularity the sharded path has always used.
		batch := make([]exec.Arrival, 0, 256)
		flushed := skip
		for i, r := range recs {
			if r.Link >= nLinks {
				return fmt.Errorf("trace record on link %d, but query reads %d links", r.Link, nLinks)
			}
			batch = append(batch, exec.Arrival{Stream: r.Link, TS: r.TS, Vals: r.Vals})
			if len(batch) == cap(batch) {
				if err := seq.PushBatch(batch); err != nil {
					return err
				}
				batch = batch[:0]
				prog.maybe(i+1, seq)
				if err := periodicCheckpoint(flushed, skip+i+1); err != nil {
					return err
				}
				flushed = skip + i + 1
			}
		}
		if err := seq.PushBatch(batch); err != nil {
			return err
		}
		if err := seq.Sync(); err != nil {
			return err
		}
	}
	if ckptFile != "" {
		if err := writeCheckpoint(); err != nil {
			return err
		}
		if fi, err := os.Stat(ckptFile); err == nil {
			fmt.Fprintf(os.Stderr, "checkpoint written to %s (%d bytes)\n", ckptFile, fi.Size())
		}
	}
	elapsed := time.Since(start)
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			return fmt.Errorf("trace sink: %w", err)
		}
		fmt.Fprintf(os.Stderr, "wrote event trace to %s\n", traceOut)
	}

	var (
		st        exec.Stats
		resultLen int
		touched   int64
	)
	if sh != nil {
		st = sh.Stats()
		if resultLen, err = sh.ResultCount(); err != nil {
			return err
		}
		if touched, err = sh.Touched(); err != nil {
			return err
		}
	} else {
		st = seq.Stats()
		resultLen = seq.View().Len()
		touched = seq.Touched()
	}
	if st.Arrivals == 0 {
		fmt.Println("no tuples processed (empty trace)")
		return nil
	}
	fmt.Printf("processed %d tuples in %v (%.3f ms per 1000 tuples)\n",
		st.Arrivals, elapsed.Round(time.Millisecond),
		float64(elapsed.Nanoseconds())/1e6/float64(st.Arrivals)*1000)
	fmt.Printf("results emitted %d, retracted %d, window negatives %d\n",
		st.Emitted, st.Retracted, st.WindowNegatives)
	fmt.Printf("current result size %d, peak stored tuples %d, tuple touches %d\n",
		resultLen, st.MaxStateTuples, touched)
	if analyze {
		fmt.Println()
		if err := explainTree(true).WriteText(os.Stdout); err != nil {
			return err
		}
	}
	if latency {
		var pos, neg obs.LogHistogramSnapshot
		if sh != nil {
			pos, neg = sh.DeltaLatency()
		} else {
			pos, neg = seq.DeltaLatency()
		}
		fmt.Println()
		fmt.Println("delta latency (ingest to view-fold, nanoseconds):")
		fmt.Printf("  %-10s %12s %12s %12s %12s %12s\n", "polarity", "count", "p50", "p95", "p99", "max")
		fmt.Printf("  %-10s %12d %12d %12d %12d %12d\n", "insertion", pos.Count, pos.P50, pos.P95, pos.P99, pos.Max)
		fmt.Printf("  %-10s %12d %12d %12d %12d %12d\n", "retraction", neg.Count, neg.P50, neg.P95, neg.P99, neg.Max)
		fmt.Println()
		if err := exec.WriteConformance(os.Stdout, profiles()); err != nil {
			return err
		}
	}
	if healthOn {
		// Stop the wall-clock sampler first, then force one final tick so
		// even runs shorter than the interval report samples >= 1 and an
		// up-to-date verdict.
		healthMon.Stop()
		healthMon.Tick()
		hst := healthMon.Status()
		fmt.Println()
		hst.WriteText(os.Stdout)
		if hst.Overall == obs.SevCrit {
			return errHealthCrit
		}
	}
	if dumpView != "" {
		var rows []tuple.Tuple
		if sh != nil {
			if rows, err = sh.Snapshot(); err != nil {
				return err
			}
		} else {
			rows = seq.View().Snapshot()
		}
		lines := make([]string, 0, len(rows))
		for _, t := range rows {
			lines = append(lines, t.String())
		}
		sort.Strings(lines)
		out := strings.Join(lines, "\n")
		if out != "" {
			out += "\n"
		}
		if err := os.WriteFile(dumpView, []byte(out), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d result rows to %s\n", len(lines), dumpView)
	}
	return nil
}

// progress prints a periodic line (tuples/s, clock, state, retraction rate)
// to stderr during a run.
type progress struct {
	every time.Duration
	start time.Time
	next  time.Time
}

func newProgress(start time.Time, every time.Duration) *progress {
	return &progress{every: every, start: start, next: start.Add(every)}
}

// liveEngine is the stats surface the progress printer reads; both the
// sequential and sharded executors satisfy it.
type liveEngine interface {
	Stats() exec.Stats
	Clock() int64
}

// maybe emits a progress line when the interval has elapsed. It checks the
// wall clock only every 1024 tuples (or batch boundary) to keep the run
// loop cheap.
func (p *progress) maybe(tuples int, eng liveEngine) {
	if p.every <= 0 || tuples&1023 != 0 {
		return
	}
	now := time.Now()
	if now.Before(p.next) {
		return
	}
	p.next = now.Add(p.every)
	st := eng.Stats()
	state := -1
	switch e := eng.(type) {
	case *exec.Engine:
		state = e.StateTuples()
	case *exec.Sharded:
		if n, err := e.StateTuples(); err == nil {
			state = n
		}
	}
	rate := float64(tuples) / now.Sub(p.start).Seconds()
	retrRate := 0.0
	if st.Arrivals > 0 {
		retrRate = float64(st.Retracted) / float64(st.Arrivals)
	}
	fmt.Fprintf(os.Stderr, "progress: %d tuples (%.0f tuples/s), clock=%d, state=%d, emitted=%d, retracted=%d (%.3f/arrival)\n",
		tuples, rate, eng.Clock(), state, st.Emitted, st.Retracted, retrRate)
}

// parseStrategy maps a -strategy value to the plan constant.
func parseStrategy(name string) (plan.Strategy, error) {
	switch strings.ToLower(name) {
	case "nt":
		return plan.NT, nil
	case "direct":
		return plan.Direct, nil
	case "upa":
		return plan.UPA, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q (want nt, direct, or upa)", name)
	}
}

// runMulti registers several queries on one shared registry and runs the
// trace through it once. Each -query value is a bench query name or
// name=CQL; queries sharing sub-plans (same window, predicate, strategy)
// share physical state, which the per-query EXPLAIN annotates.
func runMulti(specs []string, cqlLinks int, strategyName string, windowSize, duration int64,
	traceFile string, partitions int, progressEvery time.Duration,
	explainOnly, analyze bool, dumpView string) error {
	strat, err := parseStrategy(strategyName)
	if err != nil {
		return err
	}
	if duration <= 0 {
		duration = 2 * windowSize
	}
	cat := cql.Catalog{Streams: map[string]cql.StreamDef{}}
	for i := 0; i < cqlLinks; i++ {
		cat.Streams[fmt.Sprintf("S%d", i)] = cql.StreamDef{ID: i, Schema: trace.Schema()}
	}
	type namedQuery struct {
		name string
		root *plan.Node
		q    bench.Query
		cql  bool
	}
	var nqs []namedQuery
	seen := map[string]int{}
	nLinks := 1
	for _, spec := range specs {
		var nq namedQuery
		if name, text, ok := strings.Cut(spec, "="); ok {
			root, err := cql.Parse(text, cat)
			if err != nil {
				return fmt.Errorf("query %s: %w", name, err)
			}
			nq = namedQuery{name: name, root: root, cql: true}
			if cqlLinks > nLinks {
				nLinks = cqlLinks
			}
		} else {
			q, ok := queryNames[strings.ToLower(spec)]
			if !ok {
				return fmt.Errorf("unknown query %q (use -list, or name=CQL)", spec)
			}
			nq = namedQuery{name: spec, root: bench.BuildPlan(q, windowSize), q: q}
			if q.Links() > nLinks {
				nLinks = q.Links()
			}
		}
		// Repeat a name and the instances get -2, -3, ... suffixes.
		seen[nq.name]++
		if n := seen[nq.name]; n > 1 {
			nq.name = fmt.Sprintf("%s-%d", nq.name, n)
		}
		nqs = append(nqs, nq)
	}

	lazy := windowSize / 20
	if lazy < 1 {
		lazy = 1
	}
	e := exec.NewMulti(exec.Config{EagerInterval: 1, LazyInterval: lazy})
	handles := make([]*exec.QueryHandle, 0, len(nqs))
	for _, nq := range nqs {
		if err := plan.Annotate(nq.root, bench.PlanStats(nq.q, 0)); err != nil {
			return fmt.Errorf("query %s: %w", nq.name, err)
		}
		phys, err := plan.Build(nq.root, strat, plan.Options{Partitions: partitions})
		if err != nil {
			return fmt.Errorf("query %s: %w", nq.name, err)
		}
		h, err := e.RegisterQuery(exec.QuerySpec{Name: nq.name, Phys: phys})
		if err != nil {
			return fmt.Errorf("register %s: %w", nq.name, err)
		}
		handles = append(handles, h)
	}
	s := e.Sharing()
	fmt.Printf("registered %d queries under %v: %d physical operators for %d plan nodes, %d windows for %d sources (sharing ratio %.2f)\n\n",
		s.Queries, strat, s.LiveNodes, s.PlanNodes, s.LiveSources, s.PlanSources, s.Ratio())
	for _, h := range handles {
		fmt.Printf("=== %s ===\n", h.Name())
		if err := h.Explain(false).WriteText(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	if explainOnly {
		return nil
	}

	var recs []trace.Record
	if traceFile != "" {
		f, err := os.Open(traceFile)
		if err != nil {
			return err
		}
		recs, err = trace.ReadCSV(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		recs = trace.Generate(trace.Config{Links: nLinks, Tuples: int(duration) * nLinks, Seed: 42})
	}
	// A shared trace can carry links no registered query reads (e.g. three
	// links on disk, queries over S0/S1 only); those records are skipped,
	// like a deployment that never subscribed to the stream.
	read := map[int]bool{}
	for _, id := range e.Streams() {
		read[id] = true
	}
	skipped := 0
	start := time.Now()
	prog := newProgress(start, progressEvery)
	batch := make([]exec.Arrival, 0, 256)
	for i, r := range recs {
		if !read[r.Link] {
			skipped++
			continue
		}
		batch = append(batch, exec.Arrival{Stream: r.Link, TS: r.TS, Vals: r.Vals})
		if len(batch) == cap(batch) {
			if err := e.PushBatch(batch); err != nil {
				return err
			}
			batch = batch[:0]
			prog.maybe(i+1, e)
		}
	}
	if err := e.PushBatch(batch); err != nil {
		return err
	}
	if err := e.Sync(); err != nil {
		return err
	}
	elapsed := time.Since(start)

	st := e.Stats()
	fmt.Printf("processed %d tuples in %v (%.3f ms per 1000 tuples) across %d queries\n",
		st.Arrivals, elapsed.Round(time.Millisecond),
		float64(elapsed.Nanoseconds())/1e6/float64(max(1, int(st.Arrivals)))*1000, len(handles))
	if skipped > 0 {
		fmt.Printf("skipped %d trace records on links no query reads\n", skipped)
	}
	fmt.Printf("shared state: %d stored tuples, %d tuple touches\n\n", e.StateTuples(), e.Touched())
	fmt.Printf("%-20s %12s %12s\n", "query", "results", "pattern")
	for _, h := range handles {
		n, err := h.ResultCount()
		if err != nil {
			return err
		}
		fmt.Printf("%-20s %12d %12v\n", h.Name(), n, h.Pattern())
	}
	if analyze {
		for _, h := range handles {
			fmt.Printf("\n=== %s (ANALYZE) ===\n", h.Name())
			if err := h.Explain(true).WriteText(os.Stdout); err != nil {
				return err
			}
		}
	}
	if dumpView != "" {
		for _, h := range handles {
			rows, err := h.Snapshot()
			if err != nil {
				return err
			}
			lines := make([]string, 0, len(rows))
			for _, t := range rows {
				lines = append(lines, t.String())
			}
			sort.Strings(lines)
			out := strings.Join(lines, "\n")
			if out != "" {
				out += "\n"
			}
			path := fmt.Sprintf("%s.%s", dumpView, h.Name())
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %d result rows to %s\n", len(lines), path)
		}
	}
	return nil
}
