// Command upabench regenerates the evaluation tables of the paper's
// Section 6: for every experiment in DESIGN.md's index it runs the workload
// under each execution strategy and prints the measured series.
//
// Usage:
//
//	upabench                 # run every experiment at quick scale
//	upabench -scale full     # paper-scale window sweeps (slow)
//	upabench -exp e1a,e3a    # run a subset
//	upabench -json > out.json  # machine-readable results (see BENCH_PR2.json)
//	upabench -metrics-addr :9090  # expose the in-progress run's metrics
//	upabench -health         # monitor every run's health, report alert transitions
//	upabench -list           # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/obs"
)

func main() {
	scale := flag.String("scale", "quick", "experiment scale: quick or full")
	exps := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	jsonOut := flag.Bool("json", false, "write results as one JSON report on stdout instead of text tables")
	note := flag.String("note", "", "free-form caveat embedded in the -json report")
	shardCounts := flag.String("shards", "", "comma-separated shard counts for the e9 sweep (default 1,2,4,8)")
	metricsAddr := flag.String("metrics-addr", "", "serve the in-progress run's metrics/pprof on this address (e.g. :9090)")
	health := flag.Bool("health", false, "monitor every run with the engine's built-in health rules and report alert transitions at exit")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *health {
		bench.EnableHealth()
	}

	if *metricsAddr != "" {
		bench.EnableLiveMetrics()
		srv, err := obs.ServeFunc(*metricsAddr, bench.LiveMetrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "upabench: metrics endpoint:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "serving metrics on http://%s/metrics (pprof at /debug/pprof/)\n", srv.Addr())
	}
	if *shardCounts != "" {
		counts, err := parseCounts(*shardCounts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "upabench:", err)
			os.Exit(1)
		}
		bench.SetShardSweep(counts)
	}
	if err := run(*scale, *exps, *list, *jsonOut, *note); err != nil {
		fmt.Fprintln(os.Stderr, "upabench:", err)
		os.Exit(1)
	}
	if *health {
		alerts := bench.DrainAlertLog()
		if len(alerts) == 0 {
			fmt.Fprintln(os.Stderr, "health: no alert transitions across all runs")
		}
		for _, line := range alerts {
			fmt.Fprintln(os.Stderr, "health:", line)
		}
	}
}

func parseCounts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -shards value %q (want positive integers, e.g. 1,2,4,8)", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func run(scaleName, expFilter string, list, jsonOut bool, note string) error {
	all := bench.Experiments()
	if list {
		for _, e := range all {
			fmt.Printf("%-5s %s\n", e.ID, e.Title)
		}
		return nil
	}
	var scale bench.Scale
	switch scaleName {
	case "quick":
		scale = bench.Quick
	case "full":
		scale = bench.Full
	default:
		return fmt.Errorf("unknown scale %q (want quick or full)", scaleName)
	}
	want := map[string]bool{}
	if expFilter != "" {
		for _, id := range strings.Split(expFilter, ",") {
			want[strings.TrimSpace(id)] = true
		}
		for id := range want {
			if !hasExperiment(all, id) {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
		}
	}
	var report *bench.Report
	if jsonOut {
		report = bench.NewReport(scaleName)
		report.Note = note
	}
	for _, e := range all {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		if !jsonOut {
			fmt.Printf("# %s\n\n", e.Title)
		} else {
			fmt.Fprintf(os.Stderr, "running %s...\n", e.ID)
		}
		tabs, err := e.Run(scale)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if jsonOut {
			report.Add(e.ID, e.Title, tabs)
			continue
		}
		for _, t := range tabs {
			if err := bench.WriteTable(os.Stdout, t); err != nil {
				return err
			}
		}
	}
	if jsonOut {
		return report.WriteJSON(os.Stdout)
	}
	return nil
}

func hasExperiment(all []bench.Experiment, id string) bool {
	for _, e := range all {
		if e.ID == id {
			return true
		}
	}
	return false
}
