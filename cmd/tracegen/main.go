// Command tracegen emits a synthetic wide-area TCP connection trace in the
// style of the LBL Internet Traffic Archive traces used by the paper's
// evaluation (Section 6.1), as CSV on stdout or to a file.
//
// Usage:
//
//	tracegen -tuples 100000 -links 2 -seed 42 > trace.csv
//	tracegen -tuples 50000 -disjoint -o negation-trace.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/trace"
)

func main() {
	tuples := flag.Int("tuples", 100000, "number of records to generate")
	links := flag.Int("links", 2, "number of logical streams (outgoing links)")
	hosts := flag.Int("hosts", 1000, "source address domain size")
	skew := flag.Float64("skew", 1.1, "Zipf skew of source addresses (>1)")
	seed := flag.Int64("seed", 42, "random seed")
	disjoint := flag.Bool("disjoint", false, "give each link a disjoint source-address domain")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	if err := run(*tuples, *links, *hosts, *skew, *seed, *disjoint, *out); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(tuples, links, hosts int, skew float64, seed int64, disjoint bool, out string) error {
	start := time.Now()
	recs := trace.Generate(trace.Config{
		Tuples:          tuples,
		Links:           links,
		SrcHosts:        hosts,
		SrcSkew:         skew,
		Seed:            seed,
		DisjointSources: disjoint,
	})
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteCSV(w, recs); err != nil {
		return err
	}
	// Summary goes to stderr so piped CSV output stays clean.
	span := int64(0)
	if len(recs) > 0 {
		span = recs[len(recs)-1].TS - recs[0].TS
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d records across %d links, %d time units, in %v\n",
		len(recs), links, span, time.Since(start).Round(time.Millisecond))
	return nil
}
