package repro

import (
	"fmt"

	"repro/internal/operator"
	"repro/internal/tuple"
)

// Cond is a boolean condition over named columns, resolved against the
// query's schema when the condition is attached with Where.
type Cond struct {
	resolve func(s *tuple.Schema) (operator.Predicate, error)
}

// ColRef names a column in condition expressions.
type ColRef struct{ name string }

// Col references the named column.
func Col(name string) ColRef { return ColRef{name: name} }

func (c ColRef) cmp(op operator.CmpOp, v Value, sel float64) Cond {
	return Cond{resolve: func(s *tuple.Schema) (operator.Predicate, error) {
		i := s.Index(c.name)
		if i < 0 {
			return nil, fmt.Errorf("repro: no column %q in %s", c.name, s)
		}
		return operator.ColConst{Col: i, Op: op, Val: v, Sel: sel}, nil
	}}
}

// Eq compares the column to a value for equality.
func (c ColRef) Eq(v Value) Cond { return c.cmp(operator.EQ, v, 0) }

// EqStr compares the column to a string for equality.
func (c ColRef) EqStr(s string) Cond { return c.Eq(Str(s)) }

// Ne compares for inequality.
func (c ColRef) Ne(v Value) Cond { return c.cmp(operator.NE, v, 0) }

// Lt compares with <.
func (c ColRef) Lt(v Value) Cond { return c.cmp(operator.LT, v, 0) }

// Le compares with <=.
func (c ColRef) Le(v Value) Cond { return c.cmp(operator.LE, v, 0) }

// Gt compares with >.
func (c ColRef) Gt(v Value) Cond { return c.cmp(operator.GT, v, 0) }

// Ge compares with >=.
func (c ColRef) Ge(v Value) Cond { return c.cmp(operator.GE, v, 0) }

// EqWithSelectivity is Eq with an explicit selectivity estimate for the
// cost model (fraction of tuples expected to pass).
func (c ColRef) EqWithSelectivity(v Value, sel float64) Cond {
	return c.cmp(operator.EQ, v, sel)
}

// EqCol compares two columns of the same tuple.
func (c ColRef) EqCol(other string) Cond {
	return Cond{resolve: func(s *tuple.Schema) (operator.Predicate, error) {
		l, r := s.Index(c.name), s.Index(other)
		if l < 0 {
			return nil, fmt.Errorf("repro: no column %q in %s", c.name, s)
		}
		if r < 0 {
			return nil, fmt.Errorf("repro: no column %q in %s", other, s)
		}
		return operator.ColCol{Left: l, Right: r, Op: operator.EQ}, nil
	}}
}

// All is the conjunction of conditions (true when empty).
func All(conds ...Cond) Cond {
	return Cond{resolve: func(s *tuple.Schema) (operator.Predicate, error) {
		out := make(operator.And, len(conds))
		for i, c := range conds {
			p, err := c.resolve(s)
			if err != nil {
				return nil, err
			}
			out[i] = p
		}
		return out, nil
	}}
}

// Any is the disjunction of conditions (false when empty).
func Any(conds ...Cond) Cond {
	return Cond{resolve: func(s *tuple.Schema) (operator.Predicate, error) {
		out := make(operator.Or, len(conds))
		for i, c := range conds {
			p, err := c.resolve(s)
			if err != nil {
				return nil, err
			}
			out[i] = p
		}
		return out, nil
	}}
}

// NotCond negates a condition.
func NotCond(c Cond) Cond {
	return Cond{resolve: func(s *tuple.Schema) (operator.Predicate, error) {
		p, err := c.resolve(s)
		if err != nil {
			return nil, err
		}
		return operator.Not{P: p}, nil
	}}
}
