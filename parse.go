package repro

import (
	"repro/internal/cql"
)

// StreamDef registers a base stream (its id and schema) with the query
// parser.
type StreamDef = cql.StreamDef

// Catalog names the streams and tables a parsed query may reference.
type Catalog = cql.Catalog

// ParseQuery compiles a CQL-style query string into a plan node ready for
// Compile. The dialect:
//
//	SELECT [DISTINCT] (* | col, ... | aggregates) FROM source
//	    [JOIN source ON col, ...] [EXCEPT source ON col, ...]
//	    [UNION source] [INTERSECT source]
//	    [WHERE cond] [GROUP BY col, ...]
//
// where source is a registered stream name followed by a window —
// [RANGE n] (time-based), [ROWS n] (count-based), or [UNBOUNDED] — or a
// registered table name (joined retroactively for a Relation,
// non-retroactively for an NRR).
//
// Parsed queries are terminal: compile them directly rather than chaining
// further builder methods.
func ParseQuery(src string, cat Catalog) (Node, error) {
	n, err := cql.Parse(src, cat)
	if err != nil {
		return Node{err: err}, err
	}
	return Node{n: n}, nil
}
