package repro

import (
	"repro/internal/exec"
	"repro/internal/plan"
)

// PipelineEngine executes a compiled query concurrently: one goroutine per
// operator, channel-connected, with watermark alignment at binary operators.
// It is eventually equivalent to Engine — after Flush, Snapshot returns the
// same answer the sequential executor would give at the same clock. A single
// goroutine must drive Push/Advance/Flush; relation joins are not supported
// in pipelined mode.
type PipelineEngine struct {
	*exec.Pipeline
	phys *plan.Physical
}

// CompilePipeline annotates, plans, and instantiates the query on the
// concurrent executor. Execution-cadence options (lazy/eager intervals,
// OnEmit) do not apply; planning options do.
func CompilePipeline(q Node, strategy Strategy, opts ...Option) (*PipelineEngine, error) {
	if q.err != nil {
		return nil, q.err
	}
	cfg := applyOpts(opts)
	_, phys, err := buildPhysical(q, strategy, &cfg)
	if err != nil {
		return nil, err
	}
	pipe, err := exec.NewPipeline(phys, 0)
	if err != nil {
		return nil, err
	}
	// WithMetrics (plus WithQueryLabel) applies: the pipeline registers its
	// delta-latency histograms and stamps every arrival with an origin, so
	// the view goroutine records ingest→emit latency per folded delta.
	if cfg.execCfg.Metrics != nil {
		pipe.Instrument(cfg.execCfg.Metrics, cfg.execCfg.MetricLabels)
	}
	return &PipelineEngine{Pipeline: pipe, phys: phys}, nil
}

// Schema returns the result schema.
func (e *PipelineEngine) Schema() *Schema { return e.phys.Schema }

// Pattern returns the query's update-pattern class.
func (e *PipelineEngine) Pattern() Pattern { return e.phys.Pattern }
