package repro

import (
	"fmt"
	"io"
	"net/http"
	"sync"

	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/plan"
)

// Registry runs many continuous queries on one shared executor. Queries
// registered with structurally identical sub-plans — same stream, window,
// predicate, strategy, and update-pattern class — share one physical
// operator and its state: each arrival traverses the shared prefix once and
// the resulting deltas fan out to every query's private view. Sharing is
// decided per plan node from immutable canonical descriptors, so it is
// exact: a query's view is always byte-equivalent to what a standalone
// engine compiled from the same query would hold.
//
// All methods must be driven from one goroutine, like Engine. A Registry
// with one query is exactly Compile's sequential engine (Engine.Registry
// exposes it); NewRegistry is the entry point for multi-query workloads.
type Registry struct {
	e      *exec.Engine
	cfg    compileCfg
	health *HealthMonitor
	// mu guards the handle list alone (for PlanPage's HTTP goroutine);
	// everything else follows the single-goroutine contract.
	mu      sync.RWMutex
	queries []*Query
	nextID  int
	closed  bool
}

// Query is a handle on one registered query: its private result view,
// emission callback, EXPLAIN (with sharing annotations), per-operator
// stats, and an extractable single-query checkpoint. Handles stay valid
// until Unregister.
type Query struct {
	r    *Registry
	h    *exec.QueryHandle
	root *plan.Node
	phys *plan.Physical
}

// NewRegistry builds an empty shared executor. Sharded execution
// (WithShards) is single-query and rejected here — use Compile.
func NewRegistry(opts ...RegistryOption) (*Registry, error) {
	all := make([]Option, len(opts))
	for i, o := range opts {
		all[i] = o
	}
	cfg := applyOpts(all)
	if cfg.shards > 1 {
		return nil, fmt.Errorf("repro: sharded execution is single-query; compile WithShards through Compile")
	}
	if cfg.health != nil && cfg.execCfg.Metrics == nil {
		cfg.execCfg.Metrics = NewMetricsRegistry()
	}
	r := &Registry{e: exec.NewMulti(cfg.execCfg), cfg: cfg}
	if cfg.health != nil {
		r.attachHealth(*cfg.health)
	}
	return r, nil
}

// Register compiles the query under the given strategy and adds it to the
// shared dataflow, deduplicating sub-plans against every query already
// registered. The new query starts cold — its windows begin filling from
// the next arrival, and shared state it adopts reflects history it joined
// late. Unnamed queries are auto-named "q0", "q1", ... in registration
// order; names key per-query metric series and EXPLAIN share annotations.
func (r *Registry) Register(q Node, strategy Strategy, opts ...QueryOption) (*Query, error) {
	if r.closed {
		return nil, ErrClosed
	}
	all := make([]Option, len(opts))
	for i, o := range opts {
		all[i] = o
	}
	qc := applyOpts(all)
	// Planner settings are per-query; executor-wide settings come from the
	// registry's own config.
	qc.execCfg = r.cfg.execCfg
	name := qc.name
	if name == "" {
		name = fmt.Sprintf("q%d", r.nextID)
	}
	root, phys, err := buildPhysical(q, strategy, &qc)
	if err != nil {
		return nil, err
	}
	h, err := r.e.RegisterQuery(exec.QuerySpec{Name: name, Phys: phys, OnEmit: qc.execCfg.OnEmit})
	if err != nil {
		return nil, fmt.Errorf("repro: register: %w", err)
	}
	r.nextID++
	qh := &Query{r: r, h: h, root: root, phys: phys}
	r.mu.Lock()
	r.queries = append(r.queries, qh)
	r.mu.Unlock()
	return qh, nil
}

// Unregister removes the query from the shared dataflow. Plan nodes it
// shared with surviving queries live on; nodes only it used are retired and
// their state discarded. It returns the number of state tuples freed.
func (r *Registry) Unregister(q *Query) (freed int, err error) {
	if r.closed {
		return 0, ErrClosed
	}
	freed, err = r.e.UnregisterQuery(q.h)
	if err != nil {
		return 0, fmt.Errorf("repro: unregister: %w", err)
	}
	r.mu.Lock()
	for i, qq := range r.queries {
		if qq == q {
			r.queries = append(r.queries[:i], r.queries[i+1:]...)
			break
		}
	}
	r.mu.Unlock()
	return freed, nil
}

// Queries lists the live handles in registration order.
func (r *Registry) Queries() []*Query {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Query, len(r.queries))
	copy(out, r.queries)
	return out
}

// PlanPage returns a /debug/plan page for the exposition endpoint: every
// registered query's EXPLAIN tree as text, with "shared with ..."
// annotations on operators and window sources serving other queries, and
// live counters when ?analyze=1. Like Engine.PlanPage, the live mode reads
// only atomically-updated instruments — safe to scrape while tuples flow.
// Register/Unregister are not synchronized against an in-flight render
// beyond the handle list itself, so a scrape racing a registration may show
// a partially-annotated tree; the next scrape is consistent.
func (r *Registry) PlanPage() MetricsPage {
	return MetricsPage{
		Path:  "/debug/plan",
		Title: "EXPLAIN of every registered query (?analyze=1)",
		Handler: func(w http.ResponseWriter, req *http.Request) {
			analyze := req.URL.Query().Get("analyze") != ""
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, q := range r.Queries() {
				fmt.Fprintf(w, "=== %s ===\n", q.Name())
				_ = q.h.Explain(analyze).WriteText(w)
				fmt.Fprintln(w)
			}
		},
	}
}

// SharingStats quantifies sub-plan sharing: how many plan nodes and window
// sources the registered queries reference versus how many physical ones
// exist, and how many of those serve more than one query.
type SharingStats = exec.SharingStats

// Sharing reports the registry's current sub-plan sharing statistics.
func (r *Registry) Sharing() SharingStats { return r.e.Sharing() }

// Push feeds one stream tuple to every query reading that stream.
func (r *Registry) Push(streamID int, ts int64, vals ...Value) error {
	if r.closed {
		return ErrClosed
	}
	return r.e.Push(streamID, ts, vals...)
}

// PushBatch feeds many stream tuples at once (see Engine.PushBatch).
func (r *Registry) PushBatch(batch []Arrival) error {
	if r.closed {
		return ErrClosed
	}
	return r.e.PushBatch(batch)
}

// Advance moves logical time forward without a tuple arrival.
func (r *Registry) Advance(ts int64) error {
	if r.closed {
		return ErrClosed
	}
	return r.e.Advance(ts)
}

// Sync forces all pending maintenance so every view is Definition-1 exact.
func (r *Registry) Sync() error { return r.e.Sync() }

// Clock returns the registry's logical time.
func (r *Registry) Clock() int64 { return r.e.Clock() }

// Watermark returns the staleness low-watermark (see Engine.Watermark).
func (r *Registry) Watermark() int64 { return r.e.Watermark() }

// Streams returns the base stream IDs the registered queries read,
// deduplicated, in registration order.
func (r *Registry) Streams() []int { return r.e.Streams() }

// Stats returns executor counters, summed over all queries.
func (r *Registry) Stats() Stats { return r.e.Stats() }

// StateTuples syncs and returns total stored tuples across the shared
// dataflow and every query's view. Shared state is counted once.
func (r *Registry) StateTuples() (int, error) {
	if err := r.e.Sync(); err != nil {
		return 0, err
	}
	return r.e.StateTuples(), nil
}

// Touched syncs and returns cumulative tuple touches across the shared
// dataflow (the paper's Section 6 work measure).
func (r *Registry) Touched() (int64, error) {
	if err := r.e.Sync(); err != nil {
		return 0, err
	}
	return r.e.Touched(), nil
}

// UpdateTable applies one table mutation at its timestamp, routing the
// consequences through every plan that reads the table.
func (r *Registry) UpdateTable(tbl *Table, u TableUpdate) error {
	if r.closed {
		return ErrClosed
	}
	return r.e.ApplyTableUpdate(tbl, u)
}

// Metrics returns the registry backing the engines' counters (the one given
// WithMetrics, or a private one).
func (r *Registry) Metrics() *MetricsRegistry { return r.e.Metrics() }

// Health returns the health monitor, or nil unless built WithHealth.
func (r *Registry) Health() *HealthMonitor { return r.health }

// Checkpoint writes the full multi-query state — shared operator and window
// state once, per-query views each — restorable by a registry that
// registered the same queries (same names, plans, order); see Restore.
// Single-query extraction is Query.Checkpoint.
func (r *Registry) Checkpoint(w io.Writer) error {
	if r.closed {
		return ErrClosed
	}
	return r.e.CheckpointRegistry(w)
}

// Restore rehydrates a freshly built registry from a Checkpoint stream. The
// checkpoint's registration fingerprint — query names, plans, and order —
// is validated first; a disagreement fails with *MismatchError before any
// state is touched.
func (r *Registry) Restore(rd io.Reader) error {
	if r.closed {
		return ErrClosed
	}
	return r.e.RestoreRegistry(rd)
}

// Close stops the health sampler and marks the registry closed. Idempotent;
// afterwards Register, Unregister, ingest, and checkpoint calls fail with
// ErrClosed.
func (r *Registry) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	r.health.Stop()
	return nil
}

// attachHealth builds the health subsystem over the shared executor.
func (r *Registry) attachHealth(hc HealthConfig) {
	hcfg := obs.HistoryConfig{Capacity: hc.Capacity}
	if hc.Interval > 0 {
		hcfg.Interval = hc.Interval
	}
	hist := obs.NewHistory(r.e.Metrics(), hcfg)
	hist.BeforeSample(obs.RegisterProcessMetrics(r.e.Metrics()))
	rules := r.e.HealthRules(hc.SLO)
	rules = append(rules, hc.Rules...)
	h := obs.NewHealth(hist, rules...)
	for _, s := range hc.Sinks {
		h.AddSink(s)
	}
	r.health = h
	if hc.Interval >= 0 {
		h.Start()
	}
}

// Name returns the query's (possibly auto-assigned) unique name.
func (q *Query) Name() string { return q.h.Name() }

// Schema returns the query's result schema.
func (q *Query) Schema() *Schema { return q.h.Schema() }

// Pattern returns the query's update-pattern class (root edge annotation).
func (q *Query) Pattern() Pattern { return q.h.Pattern() }

// Strategy returns the execution strategy the query was compiled under.
func (q *Query) Strategy() Strategy { return q.h.Strategy() }

// View exposes the query's private result view without syncing.
func (q *Query) View() exec.View { return q.h.View() }

// Snapshot syncs the registry and copies this query's current result rows.
func (q *Query) Snapshot() ([]Tuple, error) {
	if err := q.r.Sync(); err != nil {
		return nil, err
	}
	return q.h.Snapshot()
}

// ResultCount syncs and returns this query's current result cardinality.
func (q *Query) ResultCount() (int, error) {
	if err := q.r.Sync(); err != nil {
		return 0, err
	}
	return q.h.ResultCount()
}

// OnEmit sets (or, with nil, clears) the callback observing every output
// tuple this query produces — insertions and retractions.
func (q *Query) OnEmit(fn func(Tuple)) { q.h.SetOnEmit(fn) }

// Explain writes the query's annotated physical plan; operators and window
// sources serving other registered queries carry "shared with ..."
// annotations naming them.
func (q *Query) Explain(w io.Writer) error {
	return q.h.Explain(false).WriteText(w)
}

// ExplainAnalyze syncs and writes the Explain tree with live counters.
// Counters on shared operators report the physical work, summed over every
// query the operator serves.
func (q *Query) ExplainAnalyze(w io.Writer) error {
	if err := q.r.Sync(); err != nil {
		return err
	}
	return q.h.Explain(true).WriteText(w)
}

// ExplainDOT writes the Explain tree as a Graphviz digraph.
func (q *Query) ExplainDOT(w io.Writer, analyze bool) error {
	if analyze {
		if err := q.r.Sync(); err != nil {
			return err
		}
	}
	return q.h.Explain(analyze).WriteDOT(w)
}

// OpStats returns per-operator runtime counters in this query's plan
// pre-order. Rows for shared operators report the canonical node's
// counters — the physical work, summed over every query it serves.
func (q *Query) OpStats() []exec.OpProfile { return q.h.Profile() }

// DeltaLatency snapshots this query's ingest→emit latency distributions by
// output polarity. Requires WithMetrics and a named query; zero otherwise.
func (q *Query) DeltaLatency() (pos, neg LatencySnapshot) { return q.h.DeltaLatency() }

// Checkpoint extracts this query's slice of the registry in the standalone
// single-engine format: the stream restores into an engine compiled by
// Compile (or Open) from the same query and strategy, carrying exactly the
// windows, operator state, and view this query observes.
func (q *Query) Checkpoint(w io.Writer) error {
	if q.r.closed {
		return ErrClosed
	}
	return q.h.Checkpoint(w)
}
