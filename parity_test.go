package repro_test

// Facade parity: a sequential engine and a key-partitioned sharded engine
// compiled from the same query must agree on every public signal — snapshot,
// result count, cumulative stats, watermark, explain output, keyed lookups —
// over a fixed trace, and their checkpoints must round-trip through
// repro.Open back to the same state.

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro"
)

func parityQuery(schema *repro.Schema) repro.Node {
	return repro.Stream(0, schema, repro.TimeWindow(60)).
		GroupBy([]string{"src"}, repro.CountAll(), repro.SumOf("bytes"))
}

func parityTrace() []repro.Arrival {
	protos := []string{"ftp", "http", "ftp", "telnet"}
	out := make([]repro.Arrival, 0, 160)
	for ts := int64(1); ts <= 160; ts++ {
		out = append(out, repro.Arrival{
			Stream: 0,
			TS:     ts,
			Vals:   []repro.Value{repro.Int(ts % 7), repro.Str(protos[ts%4]), repro.Int(ts % 50)},
		})
	}
	return out
}

func sortedRows(t *testing.T, eng *repro.Engine) []string {
	t.Helper()
	snap, err := eng.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	rows := make([]string, 0, len(snap))
	for _, tp := range snap {
		rows = append(rows, tp.String())
	}
	sort.Strings(rows)
	return rows
}

func TestSequentialShardedParity(t *testing.T) {
	schema := linkSchema()
	seq, err := repro.Compile(parityQuery(schema), repro.UPA)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := repro.Compile(parityQuery(schema), repro.UPA, repro.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	if sh.Shards() != 4 {
		t.Fatalf("Shards() = %d (%s)", sh.Shards(), sh.ShardFallbackReason())
	}

	trace := parityTrace()
	for _, a := range trace {
		if err := seq.Push(a.Stream, a.TS, a.Vals...); err != nil {
			t.Fatal(err)
		}
	}
	if err := sh.PushBatch(trace); err != nil {
		t.Fatal(err)
	}

	// Snapshot and result count.
	seqRows, shRows := sortedRows(t, seq), sortedRows(t, sh)
	if fmt.Sprint(seqRows) != fmt.Sprint(shRows) {
		t.Fatalf("snapshots diverge:\nseq %v\nsh  %v", seqRows, shRows)
	}
	n1, err := seq.ResultCount()
	if err != nil {
		t.Fatal(err)
	}
	n2, err := sh.ResultCount()
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 || n1 != len(seqRows) {
		t.Fatalf("ResultCount: seq %d, sharded %d, rows %d", n1, n2, len(seqRows))
	}

	// Cumulative stats agree except the sampled state peak, whose sampling
	// points depend on per-shard batch boundaries.
	s1, s2 := seq.Stats(), sh.Stats()
	s1.MaxStateTuples, s2.MaxStateTuples = 0, 0
	if s1 != s2 {
		t.Fatalf("Stats diverge: seq %+v, sharded %+v", s1, s2)
	}

	// After the snapshot-induced Sync both watermarks sit at their clock.
	if seq.Watermark() != seq.Clock() || sh.Watermark() != sh.Clock() || seq.Clock() != sh.Clock() {
		t.Fatalf("clock/watermark: seq %d/%d, sharded %d/%d",
			seq.Clock(), seq.Watermark(), sh.Clock(), sh.Watermark())
	}

	// Structural explain output is identical: sharding changes execution,
	// not the plan.
	var e1, e2 bytes.Buffer
	if err := seq.Explain(&e1); err != nil {
		t.Fatal(err)
	}
	if err := sh.Explain(&e2); err != nil {
		t.Fatal(err)
	}
	if e1.String() != e2.String() {
		t.Fatalf("explain diverges:\nseq:\n%s\nsharded:\n%s", e1.String(), e2.String())
	}

	// Keyed lookups agree for every group key (present and absent).
	for k := int64(0); k < 9; k++ {
		r1, err1 := seq.Lookup(repro.Int(k))
		r2, err2 := sh.Lookup(repro.Int(k))
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("Lookup(%d) errors diverge: %v vs %v", k, err1, err2)
		}
		if fmt.Sprint(r1) != fmt.Sprint(r2) {
			t.Fatalf("Lookup(%d): seq %v, sharded %v", k, r1, r2)
		}
	}

	// Checkpoints round-trip through Open back to the same visible state,
	// preserving each engine's shard layout.
	var ck1, ck2 bytes.Buffer
	if err := seq.Checkpoint(&ck1); err != nil {
		t.Fatal(err)
	}
	if err := sh.Checkpoint(&ck2); err != nil {
		t.Fatal(err)
	}
	re1, err := repro.Open(bytes.NewReader(ck1.Bytes()), parityQuery(schema), repro.UPA)
	if err != nil {
		t.Fatalf("Open(sequential checkpoint): %v", err)
	}
	re2, err := repro.Open(bytes.NewReader(ck2.Bytes()), parityQuery(schema), repro.UPA, repro.WithShards(4))
	if err != nil {
		t.Fatalf("Open(sharded checkpoint): %v", err)
	}
	defer re2.Close()
	if fmt.Sprint(sortedRows(t, re1)) != fmt.Sprint(seqRows) {
		t.Fatal("sequential reopen diverges from original")
	}
	if fmt.Sprint(sortedRows(t, re2)) != fmt.Sprint(shRows) {
		t.Fatal("sharded reopen diverges from original")
	}
	if g, w := re1.Stats().Arrivals, seq.Stats().Arrivals; g != w {
		t.Fatalf("reopened arrivals = %d, want %d", g, w)
	}

	// A sequential checkpoint refuses to open at a different shard layout.
	_, err = repro.Open(bytes.NewReader(ck1.Bytes()), parityQuery(schema), repro.UPA, repro.WithShards(4))
	var mm *repro.MismatchError
	if !errors.As(err, &mm) || mm.Field != "shards" {
		t.Fatalf("Open at wrong shard layout: %v, want shards MismatchError", err)
	}
}

func TestOpenMismatchAndCorrupt(t *testing.T) {
	schema := linkSchema()
	eng, err := repro.Compile(parityQuery(schema), repro.UPA)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range parityTrace()[:40] {
		if err := eng.Push(a.Stream, a.TS, a.Vals...); err != nil {
			t.Fatal(err)
		}
	}
	var ck bytes.Buffer
	if err := eng.Checkpoint(&ck); err != nil {
		t.Fatal(err)
	}

	// Different query → typed plan mismatch.
	other := repro.Stream(0, schema, repro.TimeWindow(60)).Select("src").Distinct()
	_, err = repro.Open(bytes.NewReader(ck.Bytes()), other, repro.UPA)
	var mm *repro.MismatchError
	if !errors.As(err, &mm) || mm.Field != "plan" {
		t.Fatalf("Open(different query) = %v, want plan MismatchError", err)
	}

	// Different strategy → plan mismatch too (state layouts differ).
	_, err = repro.Open(bytes.NewReader(ck.Bytes()), parityQuery(schema), repro.NT)
	if !errors.As(err, &mm) || mm.Field != "plan" {
		t.Fatalf("Open(different strategy) = %v, want plan MismatchError", err)
	}

	// Truncated stream → ErrCheckpointCorrupt.
	_, err = repro.Open(bytes.NewReader(ck.Bytes()[:ck.Len()/2]), parityQuery(schema), repro.UPA)
	if !errors.Is(err, repro.ErrCheckpointCorrupt) {
		t.Fatalf("Open(truncated) = %v, want ErrCheckpointCorrupt", err)
	}

	// Not a checkpoint at all.
	_, err = repro.Open(strings.NewReader("not a checkpoint"), parityQuery(schema), repro.UPA)
	if !errors.Is(err, repro.ErrCheckpointCorrupt) {
		t.Fatalf("Open(garbage) = %v, want ErrCheckpointCorrupt", err)
	}
}

func TestCloseContract(t *testing.T) {
	schema := linkSchema()
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			opts := []repro.Option{}
			if shards > 1 {
				opts = append(opts, repro.WithShards(shards))
			}
			eng, err := repro.Compile(parityQuery(schema), repro.UPA, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.Push(0, 1, repro.Int(1), repro.Str("ftp"), repro.Int(5)); err != nil {
				t.Fatal(err)
			}
			if err := eng.Close(); err != nil {
				t.Fatalf("first Close: %v", err)
			}
			if err := eng.Close(); err != nil {
				t.Fatalf("second Close: %v", err)
			}
			if err := eng.Push(0, 2, repro.Int(1), repro.Str("ftp"), repro.Int(5)); !errors.Is(err, repro.ErrClosed) {
				t.Fatalf("Push after Close = %v, want ErrClosed", err)
			}
			if err := eng.PushBatch([]repro.Arrival{{Stream: 0, TS: 3}}); !errors.Is(err, repro.ErrClosed) {
				t.Fatalf("PushBatch after Close = %v, want ErrClosed", err)
			}
			if err := eng.Advance(5); !errors.Is(err, repro.ErrClosed) {
				t.Fatalf("Advance after Close = %v, want ErrClosed", err)
			}
			var buf bytes.Buffer
			if err := eng.Checkpoint(&buf); !errors.Is(err, repro.ErrClosed) {
				t.Fatalf("Checkpoint after Close = %v, want ErrClosed", err)
			}
			if err := eng.Restore(bytes.NewReader(nil)); !errors.Is(err, repro.ErrClosed) {
				t.Fatalf("Restore after Close = %v, want ErrClosed", err)
			}
		})
	}
}
