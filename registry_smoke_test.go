package repro_test

import (
	"net/http/httptest"
	"strings"
	"testing"

	"repro"
)

// TestRegistryCISmoke is the CI multi-query smoke: register 8 queries on one
// registry, push traffic, unregister half, push more, and require (a) every
// survivor's view to stay bag-equal to a standalone twin fed the same
// arrivals, (b) unregistration to free state, and (c) the /debug/plan page
// to carry "shared with" annotations.
func TestRegistryCISmoke(t *testing.T) {
	sch := connSchema()
	w := func(link int) repro.Node { return repro.Stream(link, sch, repro.TimeWindow(30)) }
	sel := func(link int, proto string) repro.Node {
		return w(link).Where(repro.Col("proto").EqStr(proto))
	}
	join := func(proto string) func() repro.Node {
		return func() repro.Node { return sel(0, proto).JoinOn(sel(1, proto), "src") }
	}
	paper := paperQueries(30)
	// Survivors sit at even indices and together read streams 0..2, so the
	// push loop stays valid after the odd half is unregistered.
	specs := []struct {
		name  string
		build func() repro.Node
	}{
		{"q5-pushdown", paper["q5-pushdown"]},
		{"q3-negation", paper["q3-negation"]},
		{"q1-ftp", paper["q1-join"]},
		{"q4-distinct-join", paper["q4-distinct-join"]},
		{"q2-distinct", paper["q2-distinct"]},
		{"j-smtp", join("smtp")},
		{"j-telnet", join("telnet")},
		{"j-http", join("http")},
	}
	reg, err := repro.NewRegistry()
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	handles := make([]*repro.Query, len(specs))
	twins := make([]*repro.Engine, len(specs))
	for i, s := range specs {
		if handles[i], err = reg.Register(s.build(), repro.UPA, repro.WithQueryName(s.name)); err != nil {
			t.Fatalf("register %s: %v", s.name, err)
		}
		if i%2 == 0 {
			if twins[i], err = repro.Compile(s.build(), repro.UPA); err != nil {
				t.Fatalf("compile twin %s: %v", s.name, err)
			}
		}
	}
	if s := reg.Sharing(); s.SharedSources == 0 || s.SharedNodes == 0 {
		t.Fatalf("8 paper-derived queries must share sub-plans: %+v", s)
	}

	page := reg.PlanPage()
	rr := httptest.NewRecorder()
	page.Handler(rr, httptest.NewRequest("GET", page.Path, nil))
	if !strings.Contains(rr.Body.String(), "shared with") {
		t.Fatalf("/debug/plan carries no share annotations:\n%s", rr.Body.String())
	}

	protos := []string{"ftp", "telnet", "smtp", "http"}
	ts := int64(0)
	push := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			ts++
			stream := int(ts) % 3
			vals := []repro.Value{
				repro.Int(ts * 7 % 13), repro.Int(ts * 3 % 7), repro.Str(protos[int(ts)%4]),
			}
			if err := reg.Push(stream, ts, vals...); err != nil {
				t.Fatal(err)
			}
			for _, tw := range twins {
				if tw == nil {
					continue
				}
				for _, id := range tw.Streams() {
					if id == stream {
						if err := tw.Push(stream, ts, vals...); err != nil {
							t.Fatal(err)
						}
						break
					}
				}
			}
		}
	}
	push(120)
	freed := 0
	for i := 1; i < len(specs); i += 2 {
		n, err := reg.Unregister(handles[i])
		if err != nil {
			t.Fatalf("unregister %s: %v", specs[i].name, err)
		}
		freed += n
	}
	if freed == 0 {
		t.Error("unregistering half the queries freed no state")
	}
	if n := len(reg.Queries()); n != len(specs)/2 {
		t.Fatalf("%d queries live after unregistering half, want %d", n, len(specs)/2)
	}
	push(120)
	for i := 0; i < len(specs); i += 2 {
		rows, err := handles[i].Snapshot()
		if err != nil {
			t.Fatalf("%s snapshot: %v", specs[i].name, err)
		}
		want, err := twins[i].Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if got, wantBag := bagOf(rows), bagOf(want); got != wantBag {
			t.Errorf("%s diverged from standalone after churn\ngot:\n%s\nwant:\n%s",
				specs[i].name, got, wantBag)
		}
	}
}
