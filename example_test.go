package repro_test

import (
	"bytes"
	"fmt"

	"repro"
)

// ExampleCompile builds a windowed join with the fluent builder and watches
// the materialized answer as the window slides.
func ExampleCompile() {
	schema := repro.MustSchema(
		repro.Column{Name: "src", Kind: repro.KindInt},
		repro.Column{Name: "proto", Kind: repro.KindString},
	)
	left := repro.Stream(0, schema, repro.TimeWindow(100)).
		Where(repro.Col("proto").EqStr("ftp"))
	right := repro.Stream(1, schema, repro.TimeWindow(100)).
		Where(repro.Col("proto").EqStr("ftp"))
	eng, err := repro.Compile(left.JoinOn(right, "src"), repro.UPA)
	if err != nil {
		fmt.Println(err)
		return
	}
	eng.Push(0, 1, repro.Int(7), repro.Str("ftp"))
	eng.Push(1, 2, repro.Int(7), repro.Str("ftp"))
	n, _ := eng.ResultCount()
	fmt.Println("results at t=2:", n)
	eng.Advance(101) // the earlier constituent expires
	n, _ = eng.ResultCount()
	fmt.Println("results at t=101:", n)
	// Output:
	// results at t=2: 1
	// results at t=101: 0
}

// ExampleParseQuery runs a textual continuous query end to end.
func ExampleParseQuery() {
	schema := repro.MustSchema(
		repro.Column{Name: "src", Kind: repro.KindInt},
		repro.Column{Name: "proto", Kind: repro.KindString},
	)
	q, err := repro.ParseQuery("SELECT DISTINCT src FROM S0 [RANGE 50]",
		repro.Catalog{Streams: map[string]repro.StreamDef{"S0": {ID: 0, Schema: schema}}})
	if err != nil {
		fmt.Println(err)
		return
	}
	eng, err := repro.Compile(q, repro.UPA)
	if err != nil {
		fmt.Println(err)
		return
	}
	eng.Push(0, 1, repro.Int(5), repro.Str("ftp"))
	eng.Push(0, 2, repro.Int(5), repro.Str("http")) // duplicate src
	eng.Push(0, 3, repro.Int(9), repro.Str("ftp"))
	n, _ := eng.ResultCount()
	fmt.Println("distinct sources:", n)
	// Output:
	// distinct sources: 2
}

// ExampleEngine_Checkpoint snapshots a running query mid-stream and resumes
// it in a second engine with repro.Open: the restored engine carries the full
// window and view state, so the answer evolves exactly as if the run had
// never stopped.
func ExampleEngine_Checkpoint() {
	schema := repro.MustSchema(
		repro.Column{Name: "src", Kind: repro.KindInt},
		repro.Column{Name: "proto", Kind: repro.KindString},
	)
	query := func() repro.Node {
		return repro.Stream(0, schema, repro.TimeWindow(100)).Select("src").Distinct()
	}
	eng, err := repro.Compile(query(), repro.UPA)
	if err != nil {
		fmt.Println(err)
		return
	}
	eng.Push(0, 1, repro.Int(5), repro.Str("ftp"))
	eng.Push(0, 2, repro.Int(9), repro.Str("http"))

	var snap bytes.Buffer
	if err := eng.Checkpoint(&snap); err != nil {
		fmt.Println(err)
		return
	}
	eng.Close()

	// Later — possibly in another process — reopen from the checkpoint. The
	// query, strategy, and options must match, or Open fails with a typed
	// *repro.MismatchError before touching any state.
	resumed, err := repro.Open(&snap, query(), repro.UPA)
	if err != nil {
		fmt.Println(err)
		return
	}
	resumed.Push(0, 3, repro.Int(5), repro.Str("ftp")) // still a duplicate
	n, _ := resumed.ResultCount()
	fmt.Println("distinct sources after resume:", n)
	resumed.Advance(102) // the pre-checkpoint arrivals expire on schedule
	n, _ = resumed.ResultCount()
	fmt.Println("after the old window slides out:", n)
	// Output:
	// distinct sources after resume: 2
	// after the old window slides out: 1
}

// ExampleEngine_Pattern shows the update-pattern annotation driving the
// physical plan: negation is strict non-monotonic, so retractions flow as
// negative tuples.
func ExampleEngine_Pattern() {
	schema := repro.MustSchema(repro.Column{Name: "src", Kind: repro.KindInt})
	q := repro.Stream(0, schema, repro.TimeWindow(100)).
		Except(repro.Stream(1, schema, repro.TimeWindow(100)),
			[]string{"src"}, []string{"src"})
	var retractions int
	eng, err := repro.Compile(q, repro.UPA, repro.WithOnEmit(func(t repro.Tuple) {
		if t.Neg {
			retractions++
		}
	}))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("pattern:", eng.Pattern())
	eng.Push(0, 1, repro.Int(7)) // enters the answer
	eng.Push(1, 2, repro.Int(7)) // forces it back out
	eng.Sync()
	fmt.Println("retractions:", retractions)
	// Output:
	// pattern: STR
	// retractions: 1
}

// ExampleRegistry runs two queries on one shared executor: both window the
// same stream identically, so the window's state is stored once and each
// arrival scans it once, while each query keeps its private predicate and
// result view.
func ExampleRegistry() {
	schema := repro.MustSchema(
		repro.Column{Name: "src", Kind: repro.KindInt},
		repro.Column{Name: "proto", Kind: repro.KindString},
	)
	reg, err := repro.NewRegistry()
	if err != nil {
		fmt.Println(err)
		return
	}
	defer reg.Close()
	ftp, err := reg.Register(
		repro.Stream(0, schema, repro.TimeWindow(100)).
			Where(repro.Col("proto").EqStr("ftp")),
		repro.UPA, repro.WithQueryName("ftp"))
	if err != nil {
		fmt.Println(err)
		return
	}
	http, err := reg.Register(
		repro.Stream(0, schema, repro.TimeWindow(100)).
			Where(repro.Col("proto").EqStr("http")),
		repro.UPA, repro.WithQueryName("http"))
	if err != nil {
		fmt.Println(err)
		return
	}
	reg.Push(0, 1, repro.Int(7), repro.Str("ftp"))
	reg.Push(0, 2, repro.Int(8), repro.Str("http"))
	reg.Push(0, 3, repro.Int(9), repro.Str("ftp"))
	nf, _ := ftp.ResultCount()
	nh, _ := http.ResultCount()
	fmt.Println("ftp results:", nf)
	fmt.Println("http results:", nh)
	s := reg.Sharing()
	fmt.Printf("window sources: %d physical for %d referenced\n",
		s.LiveSources, s.PlanSources)
	// Output:
	// ftp results: 2
	// http results: 1
	// window sources: 1 physical for 2 referenced
}

// ExampleRegistry_unregister retires a query and shows shared state
// surviving while private state is freed.
func ExampleRegistry_unregister() {
	schema := repro.MustSchema(
		repro.Column{Name: "src", Kind: repro.KindInt},
		repro.Column{Name: "proto", Kind: repro.KindString},
	)
	reg, _ := repro.NewRegistry()
	defer reg.Close()
	q1, _ := reg.Register(
		repro.Stream(0, schema, repro.TimeWindow(100)).
			Where(repro.Col("proto").EqStr("ftp")),
		repro.UPA)
	q2, _ := reg.Register(
		repro.Stream(0, schema, repro.TimeWindow(100)).
			Where(repro.Col("proto").EqStr("ftp")),
		repro.UPA)
	reg.Push(0, 1, repro.Int(7), repro.Str("ftp"))
	freed, _ := reg.Unregister(q2)
	fmt.Println("state tuples freed:", freed) // only q2's private view
	n, _ := q1.ResultCount()
	fmt.Println("survivor still answers:", n)
	// Output:
	// state tuples freed: 1
	// survivor still answers: 1
}
