package repro_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro"
)

func linkSchema() *repro.Schema {
	return repro.MustSchema(
		repro.Column{Name: "src", Kind: repro.KindInt},
		repro.Column{Name: "proto", Kind: repro.KindString},
		repro.Column{Name: "bytes", Kind: repro.KindInt},
	)
}

func TestQuickstartJoin(t *testing.T) {
	schema := linkSchema()
	left := repro.Stream(0, schema, repro.TimeWindow(100)).Where(repro.Col("proto").EqStr("ftp"))
	right := repro.Stream(1, schema, repro.TimeWindow(100)).Where(repro.Col("proto").EqStr("ftp"))
	q := left.JoinOn(right, "src")

	for _, strat := range []repro.Strategy{repro.NT, repro.Direct, repro.UPA} {
		eng, err := repro.Compile(q, strat)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		must := func(err error) {
			if err != nil {
				t.Fatalf("%v: %v", strat, err)
			}
		}
		must(eng.Push(0, 1, repro.Int(7), repro.Str("ftp"), repro.Int(10)))
		must(eng.Push(1, 2, repro.Int(7), repro.Str("ftp"), repro.Int(20)))
		must(eng.Push(0, 3, repro.Int(7), repro.Str("http"), repro.Int(30)))
		rows, err := eng.Snapshot()
		must(err)
		if len(rows) != 1 || rows[0].Vals[0] != repro.Int(7) {
			t.Fatalf("%v: snapshot = %v", strat, rows)
		}
		// The join result expires when its first constituent does.
		must(eng.Advance(101))
		if n, _ := eng.ResultCount(); n != 0 {
			t.Fatalf("%v: results after window slid: %d", strat, n)
		}
	}
}

func TestBuilderErrorsSurfaceAtCompile(t *testing.T) {
	schema := linkSchema()
	cases := map[string]repro.Node{
		"bad-where-col":  repro.Stream(0, schema, repro.TimeWindow(10)).Where(repro.Col("nope").Eq(repro.Int(1))),
		"bad-select":     repro.Stream(0, schema, repro.TimeWindow(10)).Select("nope"),
		"bad-join-col":   repro.Stream(0, schema, repro.TimeWindow(10)).JoinOn(repro.Stream(1, schema, repro.TimeWindow(10)), "nope"),
		"empty-join":     repro.Stream(0, schema, repro.TimeWindow(10)).JoinOn(repro.Stream(1, schema, repro.TimeWindow(10))),
		"nil-schema":     repro.Stream(0, nil, repro.TimeWindow(10)),
		"groupby-middle": repro.Stream(0, schema, repro.TimeWindow(10)).GroupBy([]string{"src"}, repro.CountAll()).Select("src"),
		"bad-agg-col":    repro.Stream(0, schema, repro.TimeWindow(10)).GroupBy([]string{"src"}, repro.SumOf("nope")),
		"bad-except":     repro.Stream(0, schema, repro.TimeWindow(10)).Except(repro.Stream(1, schema, repro.TimeWindow(10)), []string{"nope"}, []string{"src"}),
	}
	for name, q := range cases {
		if _, err := repro.Compile(q, repro.UPA); err == nil {
			t.Errorf("%s: compile succeeded", name)
		}
		if q.Err() == nil && name != "groupby-middle" {
			// groupby-middle is caught at Compile (placement rule).
			t.Errorf("%s: builder did not record an error", name)
		}
	}
}

func TestGroupByFacade(t *testing.T) {
	schema := linkSchema()
	q := repro.Stream(0, schema, repro.TimeWindow(50)).
		GroupBy([]string{"proto"}, repro.CountAll(), repro.SumOf("bytes"), repro.MinOf("bytes"), repro.MaxOf("bytes"), repro.AvgOf("bytes"))
	eng, err := repro.Compile(q, repro.UPA)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Push(0, 1, repro.Int(1), repro.Str("ftp"), repro.Int(10)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Push(0, 2, repro.Int(2), repro.Str("ftp"), repro.Int(30)); err != nil {
		t.Fatal(err)
	}
	rows, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	got := rows[0].Vals
	if got[0].S != "ftp" || got[1] != repro.Int(2) || got[2] != repro.Float(40) ||
		got[3] != repro.Int(10) || got[4] != repro.Int(30) || got[5] != repro.Float(20) {
		t.Errorf("group row = %v", got)
	}
}

func TestExceptAndIntersectFacade(t *testing.T) {
	schema := linkSchema()
	a := repro.Stream(0, schema, repro.TimeWindow(100)).Select("src")
	b := repro.Stream(1, schema, repro.TimeWindow(100)).Select("src")
	q := a.Except(b, []string{"src"}, []string{"src"})
	eng, err := repro.Compile(q, repro.UPA)
	if err != nil {
		t.Fatal(err)
	}
	eng.Push(0, 1, repro.Int(5), repro.Str("x"), repro.Int(1))
	if n, _ := eng.ResultCount(); n != 1 {
		t.Fatal("negation should admit the unmatched tuple")
	}
	eng.Push(1, 2, repro.Int(5), repro.Str("y"), repro.Int(2))
	if n, _ := eng.ResultCount(); n != 0 {
		t.Fatal("negation should retract on a matching W2 arrival")
	}

	x := repro.Stream(0, schema, repro.TimeWindow(100)).Select("src").
		IntersectWith(repro.Stream(1, schema, repro.TimeWindow(100)).Select("src"))
	eng2, err := repro.Compile(x, repro.Direct)
	if err != nil {
		t.Fatal(err)
	}
	eng2.Push(0, 1, repro.Int(5), repro.Str("x"), repro.Int(1))
	eng2.Push(1, 2, repro.Int(5), repro.Str("y"), repro.Int(2))
	if n, _ := eng2.ResultCount(); n != 1 {
		t.Fatal("intersection should match")
	}
}

func TestUnionFacade(t *testing.T) {
	schema := linkSchema()
	q := repro.Union(
		repro.Stream(0, schema, repro.TimeWindow(50)),
		repro.Stream(1, schema, repro.TimeWindow(50)),
	)
	eng, err := repro.Compile(q, repro.UPA)
	if err != nil {
		t.Fatal(err)
	}
	eng.Push(0, 1, repro.Int(1), repro.Str("a"), repro.Int(1))
	eng.Push(1, 2, repro.Int(2), repro.Str("b"), repro.Int(2))
	if n, _ := eng.ResultCount(); n != 2 {
		t.Fatalf("union count = %d", n)
	}
}

func TestTableJoinFacade(t *testing.T) {
	schema := linkSchema()
	tblSchema := repro.MustSchema(
		repro.Column{Name: "sym", Kind: repro.KindInt},
		repro.Column{Name: "name", Kind: repro.KindString},
	)
	nrr := repro.NewNRR("companies", tblSchema)
	q := repro.Stream(0, schema, repro.TimeWindow(100)).JoinTable(nrr, []string{"src"}, []string{"sym"})
	eng, err := repro.Compile(q, repro.UPA)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.UpdateTable(nrr, repro.TableUpdate{Kind: repro.InsertRow, TS: 0, Row: []repro.Value{repro.Int(7), repro.Str("Sun")}}); err != nil {
		t.Fatal(err)
	}
	eng.Push(0, 1, repro.Int(7), repro.Str("ftp"), repro.Int(1))
	rows, _ := eng.Snapshot()
	if len(rows) != 1 || rows[0].Vals[4].S != "Sun" {
		t.Fatalf("table join rows = %v", rows)
	}
	// Non-retroactive: deleting the row keeps the result.
	if err := eng.UpdateTable(nrr, repro.TableUpdate{Kind: repro.DeleteRow, TS: 2, Row: []repro.Value{repro.Int(7), repro.Str("Sun")}}); err != nil {
		t.Fatal(err)
	}
	if n, _ := eng.ResultCount(); n != 1 {
		t.Fatal("NRR delete must not retract")
	}
}

func TestExplainAndPattern(t *testing.T) {
	schema := linkSchema()
	q := repro.Stream(0, schema, repro.TimeWindow(100)).
		Except(repro.Stream(1, schema, repro.TimeWindow(100)), []string{"src"}, []string{"src"})
	eng, err := repro.Compile(q, repro.UPA)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Pattern() != repro.Strict {
		t.Errorf("pattern = %v", eng.Pattern())
	}
	var buf bytes.Buffer
	if err := eng.Explain(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"UPA", "negate", "[STR]", "[WKS]"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
	if eng.Schema().Len() != 3 {
		t.Errorf("schema = %v", eng.Schema())
	}
}

func TestOptionsAndOptimizer(t *testing.T) {
	schema := linkSchema()
	neg := repro.Stream(0, schema, repro.TimeWindow(100)).
		Except(repro.Stream(1, schema, repro.TimeWindow(100)), []string{"src"}, []string{"src"})
	q := neg.JoinOn(repro.Stream(2, schema, repro.TimeWindow(100)).Where(repro.Col("proto").EqStr("ftp")), "src")

	var emitted int
	eng, err := repro.Compile(q, repro.UPA,
		repro.WithPartitions(5),
		repro.WithSTRHash(),
		repro.WithLazyInterval(10),
		repro.WithEagerInterval(1),
		repro.WithOptimizer(),
		repro.WithOnEmit(func(repro.Tuple) { emitted++ }),
		repro.WithStreamStats(0, 1, map[int]float64{0: 50}),
	)
	if err != nil {
		t.Fatal(err)
	}
	eng.Push(0, 1, repro.Int(7), repro.Str("x"), repro.Int(1))
	eng.Push(2, 2, repro.Int(7), repro.Str("ftp"), repro.Int(2))
	if n, _ := eng.ResultCount(); n != 1 {
		t.Fatalf("results = %d", n)
	}
	if emitted == 0 {
		t.Error("OnEmit not called")
	}
	// STR partitioned option also compiles and runs.
	if _, err := repro.Compile(q, repro.UPA, repro.WithSTRPartitioned()); err != nil {
		t.Fatal(err)
	}
}

func TestCountWindowFacade(t *testing.T) {
	schema := linkSchema()
	q := repro.Stream(0, schema, repro.CountWindow(2)).Select("src")
	eng, err := repro.Compile(q, repro.UPA)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 3; i++ {
		eng.Push(0, i, repro.Int(i), repro.Str("a"), repro.Int(1))
	}
	rows, _ := eng.Snapshot()
	if len(rows) != 2 {
		t.Fatalf("count window rows = %v", rows)
	}
}

func TestMonotonicStreamFacade(t *testing.T) {
	schema := linkSchema()
	q := repro.Stream(0, schema, repro.Unbounded()).Where(repro.Col("bytes").Gt(repro.Int(5)))
	eng, err := repro.Compile(q, repro.UPA)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Pattern() != repro.Monotonic {
		t.Errorf("pattern = %v", eng.Pattern())
	}
	eng.Push(0, 1, repro.Int(1), repro.Str("a"), repro.Int(10))
	eng.Push(0, 2, repro.Int(2), repro.Str("a"), repro.Int(1))
	if n, _ := eng.ResultCount(); n != 1 {
		t.Fatalf("monotonic count = %d", n)
	}
}

func TestTraceAndBenchFacade(t *testing.T) {
	recs := repro.GenerateTrace(repro.TraceConfig{Tuples: 100, Seed: 1})
	if len(recs) != 100 || repro.TraceSchema().Len() != 6 {
		t.Fatal("trace facade")
	}
	res, err := repro.RunBench(0 /* Q1FTP */, repro.BenchConfig{Strategy: repro.UPA, Window: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples == 0 || res.MsPerK <= 0 {
		t.Errorf("bench facade result: %+v", res)
	}
}

func TestCondCombinators(t *testing.T) {
	schema := linkSchema()
	q := repro.Stream(0, schema, repro.TimeWindow(50)).Where(repro.All(
		repro.Any(repro.Col("proto").EqStr("ftp"), repro.Col("proto").EqStr("telnet")),
		repro.NotCond(repro.Col("bytes").Ge(repro.Int(100))),
		repro.Col("src").Ne(repro.Int(0)),
		repro.Col("src").Le(repro.Int(10)),
		repro.Col("src").Lt(repro.Int(10)),
		repro.Col("src").EqCol("src"),
		repro.Col("proto").EqWithSelectivity(repro.Str("ftp"), 0.04),
	))
	eng, err := repro.Compile(q, repro.Direct)
	if err != nil {
		t.Fatal(err)
	}
	eng.Push(0, 1, repro.Int(5), repro.Str("ftp"), repro.Int(10))  // passes
	eng.Push(0, 2, repro.Int(5), repro.Str("smtp"), repro.Int(10)) // fails Any
	eng.Push(0, 3, repro.Int(0), repro.Str("ftp"), repro.Int(10))  // fails Ne
	if n, _ := eng.ResultCount(); n != 1 {
		t.Fatalf("cond count = %d", n)
	}
	// Unknown columns in combinators surface errors.
	bad := repro.Stream(0, schema, repro.TimeWindow(50)).Where(repro.All(repro.Col("nope").Eq(repro.Int(1))))
	if _, err := repro.Compile(bad, repro.UPA); err == nil {
		t.Error("bad column in All accepted")
	}
	bad2 := repro.Stream(0, schema, repro.TimeWindow(50)).Where(repro.Col("src").EqCol("nope"))
	if _, err := repro.Compile(bad2, repro.UPA); err == nil {
		t.Error("bad column in EqCol accepted")
	}
}

func TestParseQueryEndToEnd(t *testing.T) {
	schema := linkSchema()
	cat := repro.Catalog{
		Streams: map[string]repro.StreamDef{
			"S0": {ID: 0, Schema: schema},
			"S1": {ID: 1, Schema: schema},
		},
	}
	q, err := repro.ParseQuery(
		"SELECT * FROM S0 [RANGE 100] JOIN S1 [RANGE 100] ON src WHERE proto = 'ftp'", cat)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []repro.Strategy{repro.NT, repro.Direct, repro.UPA} {
		eng, err := repro.Compile(q, strat)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		eng.Push(0, 1, repro.Int(7), repro.Str("ftp"), repro.Int(1))
		eng.Push(1, 2, repro.Int(7), repro.Str("ftp"), repro.Int(2))
		eng.Push(0, 3, repro.Int(7), repro.Str("http"), repro.Int(3))
		if n, _ := eng.ResultCount(); n != 1 {
			t.Fatalf("%v: results = %d", strat, n)
		}
	}
	// Parse errors surface both immediately and at Compile.
	bad, err := repro.ParseQuery("SELECT nope FROM S0 [RANGE 10]", cat)
	if err == nil || bad.Err() == nil {
		t.Error("bad query accepted")
	}
	if _, err := repro.Compile(bad, repro.UPA); err == nil {
		t.Error("bad query compiled")
	}
}

func TestParseQueryGroupBy(t *testing.T) {
	cat := repro.Catalog{Streams: map[string]repro.StreamDef{"S0": {ID: 0, Schema: linkSchema()}}}
	q, err := repro.ParseQuery("SELECT proto, COUNT(*) FROM S0 [RANGE 50] GROUP BY proto", cat)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := repro.Compile(q, repro.UPA)
	if err != nil {
		t.Fatal(err)
	}
	eng.Push(0, 1, repro.Int(1), repro.Str("ftp"), repro.Int(1))
	eng.Push(0, 2, repro.Int(2), repro.Str("ftp"), repro.Int(1))
	rows, _ := eng.Snapshot()
	if len(rows) != 1 || rows[0].Vals[1] != repro.Int(2) {
		t.Fatalf("group rows = %v", rows)
	}
}

func TestPipelineFacade(t *testing.T) {
	schema := linkSchema()
	q := repro.Stream(0, schema, repro.TimeWindow(100)).
		JoinOn(repro.Stream(1, schema, repro.TimeWindow(100)), "src")
	pipe, err := repro.CompilePipeline(q, repro.UPA)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	if pipe.Pattern() != repro.Weak || pipe.Schema().Len() != 6 {
		t.Error("pipeline metadata")
	}
	pipe.Push(0, 1, repro.Int(7), repro.Str("ftp"), repro.Int(1))
	pipe.Push(1, 2, repro.Int(7), repro.Str("ftp"), repro.Int(2))
	rows, err := pipe.Snapshot()
	if err != nil || len(rows) != 1 {
		t.Fatalf("pipeline snapshot: %v %v", rows, err)
	}
	// Builder errors surface.
	bad := repro.Stream(0, nil, repro.TimeWindow(10))
	if _, err := repro.CompilePipeline(bad, repro.UPA); err == nil {
		t.Error("bad query accepted")
	}
}

func TestLookup(t *testing.T) {
	schema := linkSchema()
	// Keyed view (group-by): lookup by group value.
	g := repro.Stream(0, schema, repro.TimeWindow(50)).
		GroupBy([]string{"proto"}, repro.CountAll())
	eng, err := repro.Compile(g, repro.UPA)
	if err != nil {
		t.Fatal(err)
	}
	eng.Push(0, 1, repro.Int(1), repro.Str("ftp"), repro.Int(1))
	eng.Push(0, 2, repro.Int(2), repro.Str("ftp"), repro.Int(1))
	rows, err := eng.Lookup(repro.Str("ftp"))
	if err != nil || len(rows) != 1 || rows[0].Vals[1] != repro.Int(2) {
		t.Fatalf("keyed lookup: %v %v", rows, err)
	}
	if rows, err := eng.Lookup(repro.Str("nntp")); err != nil || len(rows) != 0 {
		t.Fatalf("absent group lookup: %v %v", rows, err)
	}
	// NT hash view: lookup by full row.
	j := repro.Stream(0, schema, repro.TimeWindow(50)).Select("src")
	nt, err := repro.Compile(j, repro.NT)
	if err != nil {
		t.Fatal(err)
	}
	nt.Push(0, 1, repro.Int(7), repro.Str("ftp"), repro.Int(1))
	rows, err = nt.Lookup(repro.Int(7))
	if err != nil || len(rows) != 1 {
		t.Fatalf("hash lookup: %v %v", rows, err)
	}
	// FIFO view (UPA over WKS root): no keyed access, typed sentinel.
	upa, err := repro.Compile(j, repro.UPA)
	if err != nil {
		t.Fatal(err)
	}
	upa.Push(0, 1, repro.Int(7), repro.Str("ftp"), repro.Int(1))
	if _, err := upa.Lookup(repro.Int(7)); !errors.Is(err, repro.ErrNoKeyedView) {
		t.Fatalf("FIFO view lookup error = %v, want ErrNoKeyedView", err)
	}
}

func TestWithShards(t *testing.T) {
	schema := linkSchema()
	build := func() repro.Node {
		left := repro.Stream(0, schema, repro.TimeWindow(100)).Where(repro.Col("proto").EqStr("ftp"))
		right := repro.Stream(1, schema, repro.TimeWindow(100)).Where(repro.Col("proto").EqStr("ftp"))
		return left.JoinOn(right, "src")
	}
	seq, err := repro.Compile(build(), repro.UPA)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := repro.Compile(build(), repro.UPA, repro.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	if sh.Shards() != 4 || sh.ShardFallbackReason() != "" {
		t.Fatalf("shards=%d reason=%q", sh.Shards(), sh.ShardFallbackReason())
	}
	protos := []string{"ftp", "http", "ftp", "telnet"}
	var batch []repro.Arrival
	for ts := int64(1); ts <= 200; ts++ {
		vals := []repro.Value{repro.Int(ts % 9), repro.Str(protos[ts%4]), repro.Int(ts)}
		if err := seq.Push(int(ts%2), ts, vals...); err != nil {
			t.Fatal(err)
		}
		batch = append(batch, repro.Arrival{Stream: int(ts % 2), TS: ts, Vals: vals})
	}
	if err := sh.PushBatch(batch); err != nil {
		t.Fatal(err)
	}
	a, err := seq.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sh.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("sharded snapshot has %d rows, sequential %d", len(b), len(a))
	}
	// Keyed (group-by) views support sharded point lookups.
	gq := repro.Stream(0, schema, repro.TimeWindow(100)).GroupBy([]string{"src"}, repro.CountAll())
	geng, err := repro.Compile(gq, repro.UPA, repro.WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	defer geng.Close()
	for ts := int64(1); ts <= 20; ts++ {
		if err := geng.Push(0, ts, repro.Int(ts%4), repro.Str("ftp"), repro.Int(ts)); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := geng.Lookup(repro.Int(2))
	if err != nil || len(rows) != 1 || rows[0].Vals[1] != repro.Int(5) {
		t.Fatalf("sharded Lookup(2) = %v, %v (want one group with count 5)", rows, err)
	}
}

func TestWithShardsFallback(t *testing.T) {
	schema := linkSchema()
	// Count-based windows cannot shard: eviction order is global.
	q := repro.Stream(0, schema, repro.CountWindow(10)).Select("src").Distinct()
	eng, err := repro.Compile(q, repro.UPA, repro.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if eng.Shards() != 1 {
		t.Fatalf("Shards() = %d, want 1", eng.Shards())
	}
	if !strings.Contains(eng.ShardFallbackReason(), "count-based window") {
		t.Fatalf("reason = %q", eng.ShardFallbackReason())
	}
	if err := eng.Push(0, 1, repro.Int(1), repro.Str("ftp"), repro.Int(5)); err != nil {
		t.Fatal(err)
	}
	if n, err := eng.ResultCount(); err != nil || n != 1 {
		t.Fatalf("ResultCount = %d, %v", n, err)
	}
}
