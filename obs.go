package repro

import (
	"fmt"
	"io"
	"net/http"

	"repro/internal/exec"
	"repro/internal/obs"
)

// Observability re-exports: the metrics registry, typed event tracer, and
// exposition endpoint of internal/obs, attachable to a compiled query via
// WithMetrics and WithTracer. Both are off by default; a disabled engine
// pays one nil check per trace site and atomic counter adds only.
type (
	// MetricsRegistry holds named counters, gauges, and histograms; an
	// engine compiled WithMetrics registers its instruments here (see the
	// upa_* series in DESIGN.md) and enables per-Push latency sampling.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a registry.
	MetricsSnapshot = obs.Snapshot
	// Tracer fans typed engine events out to sinks.
	Tracer = obs.Tracer
	// TraceEvent is one typed engine event.
	TraceEvent = obs.Event
	// TraceEventKind classifies a TraceEvent.
	TraceEventKind = obs.EventKind
	// TraceSink receives every traced event.
	TraceSink = obs.Sink
	// JSONLSink streams traced events as JSON lines; Flush forces buffered
	// events to the writer mid-run, Close flushes and finishes.
	JSONLSink = obs.JSONLSink
	// RingSink keeps the last N events in memory.
	RingSink = obs.RingSink
	// MetricsServer is a running HTTP exposition endpoint.
	MetricsServer = obs.Server
	// MetricsPage is one extra endpoint mounted on the exposition handler,
	// e.g. Engine.PlanPage's /debug/plan.
	MetricsPage = obs.Page
	// LatencySnapshot is a point-in-time reading of a delta-latency
	// distribution: count, sum, max, and interpolated p50/p95/p99, all in
	// nanoseconds (see Engine.DeltaLatency).
	LatencySnapshot = obs.LogHistogramSnapshot
)

// Trace event kinds.
const (
	// EvArrival is one base-stream tuple admitted.
	EvArrival = obs.EvArrival
	// EvEmit is one positive output-stream tuple.
	EvEmit = obs.EvEmit
	// EvRetract is one negative output-stream tuple.
	EvRetract = obs.EvRetract
	// EvWindowExpire is one window-generated negative tuple (NT strategy).
	EvWindowExpire = obs.EvWindowExpire
	// EvViewExpire is one lazy result-view expiration pass.
	EvViewExpire = obs.EvViewExpire
	// EvTableUpdate is one table mutation routed through the plan.
	EvTableUpdate = obs.EvTableUpdate
	// EvEagerPass is one eager maintenance pass that moved tuples.
	EvEagerPass = obs.EvEagerPass
	// EvLazyPass is one lazy maintenance pass that moved tuples.
	EvLazyPass = obs.EvLazyPass
	// EvDeltaSpan is one sampled per-delta span: the operator-by-operator
	// dwell breakdown of a traced arrival (see WithTraceSampling).
	EvDeltaSpan = obs.EvDeltaSpan
)

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTracer builds a tracer over the given sinks with every event kind
// enabled; restrict with its Only method.
func NewTracer(sinks ...TraceSink) *Tracer { return obs.NewTracer(sinks...) }

// NewJSONLSink writes one JSON object per traced event to w (buffered;
// Flush forces partial output mid-run, Close flushes and finishes).
func NewJSONLSink(w io.Writer) *JSONLSink { return obs.NewJSONLSink(w) }

// NewRingSink keeps the most recent n events in memory. Overwritten events
// are counted; chain .ExposeDropped(reg) to surface that count as the
// upa_trace_dropped_total series instead of dropping silently.
func NewRingSink(n int) *RingSink { return obs.NewRingSink(n) }

// WithMetrics registers the compiled engine's instruments in reg and
// enables wall-clock Push latency sampling.
func WithMetrics(reg *MetricsRegistry) Option {
	return func(c *compileCfg) { c.execCfg.Metrics = reg }
}

// WithTracer attaches a typed-event tracer to the compiled engine.
func WithTracer(t *Tracer) Option {
	return func(c *compileCfg) { c.execCfg.Tracer = t }
}

// WithQueryLabel merges a {query: name} label into every metric series the
// compiled engine registers, so one registry (and one exposition endpoint)
// can carry several queries' series side by side.
func WithQueryLabel(name string) Option {
	return func(c *compileCfg) {
		merged := obs.Labels{}
		for k, v := range c.execCfg.MetricLabels {
			merged[k] = v
		}
		merged["query"] = name
		c.execCfg.MetricLabels = merged
	}
}

// WithTraceSampling enables per-delta span tracing: one in every n admitted
// arrivals (or arrival runs, on the batch path) is traced through the plan,
// emitting one EvDeltaSpan event per operator it touches with that
// operator's dwell time. Requires a WithTracer tracer that wants
// EvDeltaSpan; n <= 0 disables sampling (the default). Keep n large (say,
// 1000+) on hot streams — sampling exists so spans stay within the <5%
// instrumentation overhead budget.
func WithTraceSampling(n int) Option {
	return func(c *compileCfg) { c.execCfg.TraceSampleEvery = n }
}

// MetricsHandler serves reg over HTTP: /metrics (Prometheus text format),
// /metrics.json, /debug/vars (expvar), and /debug/pprof/. Extra pages (e.g.
// Engine.PlanPage) are mounted alongside and listed on the index.
func MetricsHandler(reg *MetricsRegistry, pages ...MetricsPage) http.Handler {
	return obs.Handler(reg, pages...)
}

// ServeMetrics binds addr (e.g. ":9090") and serves MetricsHandler in the
// background until the returned server is closed.
func ServeMetrics(addr string, reg *MetricsRegistry, pages ...MetricsPage) (*MetricsServer, error) {
	return obs.Serve(addr, reg, pages...)
}

// PlanPage returns a /debug/plan page for the exposition endpoint: the
// engine's EXPLAIN tree as text (or a Graphviz digraph with ?format=dot),
// annotated with live counters when ?analyze=1. The live mode reads only
// atomically-updated instruments — it never syncs or blocks the engine — so
// counters are a consistent-enough mid-run approximation, like /metrics.
func (e *Engine) PlanPage() MetricsPage {
	return MetricsPage{
		Path:  "/debug/plan",
		Title: "EXPLAIN of the running plan (?analyze=1, ?format=dot)",
		Handler: func(w http.ResponseWriter, r *http.Request) {
			analyze := r.URL.Query().Get("analyze") != ""
			t := e.explainTree(analyze)
			if r.URL.Query().Get("format") == "dot" {
				w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
				_ = t.WriteDOT(w)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = t.WriteText(w)
		},
	}
}

// Metrics returns the registry backing the engine's counters (the one
// given WithMetrics, or the engine's private registry). A sharded engine's
// shards share one registry, with per-shard series labeled shard="i".
func (e *Engine) Metrics() *MetricsRegistry {
	if e.sh != nil {
		return e.sh.Metrics()
	}
	return e.seq.Metrics()
}

// DeltaLatency snapshots the engine's ingest→emit delta-latency
// distributions, split by output polarity: pos covers emitted insertions,
// neg covers retractions (negative tuples). Latency is measured from the
// moment an arrival enters Push/PushBatch (for sharded engines: enters the
// shard buffer, so queue wait counts) to the moment its consequences are
// folded into the result view. Recording requires WithMetrics; without it
// both snapshots are zero. Sharded engines fold all shards' histograms.
func (e *Engine) DeltaLatency() (pos, neg LatencySnapshot) {
	if e.sh != nil {
		return e.sh.DeltaLatency()
	}
	return e.seq.DeltaLatency()
}

// PatternViolations returns the total number of update-pattern conformance
// violations the engine's per-edge monitor has recorded: retractions that
// exceeded their operator's declared pattern class (expirations on a
// monotonic edge, out-of-insertion-order expirations on a weakest/FIFO
// edge, premature expirations on a weak edge). Zero on a conformant run.
// Per-operator and per-kind breakdowns are in OpStats, EXPLAIN ANALYZE, the
// upa_pattern_violations_total series, and ConformancePage.
func (e *Engine) PatternViolations() int64 {
	if e.sh != nil {
		return e.sh.Violations()
	}
	return e.seq.Violations()
}

// ConformancePage returns a /debug/conformance page for the exposition
// endpoint: one row per operator with its declared and observed
// update-pattern classes and violation counts by kind, plus the
// delta-latency percentiles — the conformance monitor's verdict at a
// glance. Reads are atomic; the page never blocks the engine.
func (e *Engine) ConformancePage() MetricsPage {
	return MetricsPage{
		Path:  "/debug/conformance",
		Title: "update-pattern conformance: declared vs observed per operator",
		Handler: func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = exec.WriteConformance(w, e.OpStats())
			pos, neg := e.DeltaLatency()
			fmt.Fprintf(w, "\ndelta latency (ns): pos n=%d p50=%d p95=%d p99=%d max=%d\n",
				pos.Count, pos.P50, pos.P95, pos.P99, pos.Max)
			fmt.Fprintf(w, "                    neg n=%d p50=%d p95=%d p99=%d max=%d\n",
				neg.Count, neg.P50, neg.P95, neg.P99, neg.Max)
		},
	}
}
