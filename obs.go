package repro

import (
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/exec"
	"repro/internal/obs"
)

// Observability re-exports: the metrics registry, typed event tracer, and
// exposition endpoint of internal/obs, attachable to a compiled query via
// WithMetrics and WithTracer. Both are off by default; a disabled engine
// pays one nil check per trace site and atomic counter adds only.
type (
	// MetricsRegistry holds named counters, gauges, and histograms; an
	// engine compiled WithMetrics registers its instruments here (see the
	// upa_* series in DESIGN.md) and enables per-Push latency sampling.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a registry.
	MetricsSnapshot = obs.Snapshot
	// Tracer fans typed engine events out to sinks.
	Tracer = obs.Tracer
	// TraceEvent is one typed engine event.
	TraceEvent = obs.Event
	// TraceEventKind classifies a TraceEvent.
	TraceEventKind = obs.EventKind
	// TraceSink receives every traced event.
	TraceSink = obs.Sink
	// JSONLSink streams traced events as JSON lines; Flush forces buffered
	// events to the writer mid-run, Close flushes and finishes.
	JSONLSink = obs.JSONLSink
	// RingSink keeps the last N events in memory.
	RingSink = obs.RingSink
	// MetricsServer is a running HTTP exposition endpoint.
	MetricsServer = obs.Server
	// MetricsPage is one extra endpoint mounted on the exposition handler,
	// e.g. Engine.PlanPage's /debug/plan.
	MetricsPage = obs.Page
	// LatencySnapshot is a point-in-time reading of a delta-latency
	// distribution: count, sum, max, and interpolated p50/p95/p99, all in
	// nanoseconds (see Engine.DeltaLatency).
	LatencySnapshot = obs.LogHistogramSnapshot
	// MetricsHistory is the in-process ring-buffer sampler behind
	// WithHealth: per-series retained windows of counter deltas, gauge
	// values, and bucket-wise latency distributions.
	MetricsHistory = obs.History
	// HealthMonitor evaluates declarative rules over a MetricsHistory
	// every sample tick and drives per-rule OK→WARN→CRIT alert state
	// machines (see WithHealth and Engine.Health).
	HealthMonitor = obs.Health
	// HealthStatus is a point-in-time report of every rule's severity.
	HealthStatus = obs.HealthStatus
	// HealthRule is one declarative health check (threshold,
	// rate-of-change, or windowed-quantile predicate over any series).
	HealthRule = obs.Rule
	// HealthSignal is the series-window expression a rule evaluates.
	HealthSignal = obs.Signal
	// HealthSeverity is a rule state: SevOK < SevWarn < SevCrit.
	HealthSeverity = obs.Severity
	// AlertTransition is one alert state change delivered to sinks.
	AlertTransition = obs.Transition
	// AlertSink receives alert transitions (see NewLogAlertSink,
	// AlertFunc, and TracerAlertSink).
	AlertSink = obs.AlertSink
	// HealthSLO carries deployment-specific targets for the engine's
	// built-in rules (delta-latency p99, checkpoint age).
	HealthSLO = exec.HealthSLO
)

// Health severities.
const (
	SevOK   = obs.SevOK
	SevWarn = obs.SevWarn
	SevCrit = obs.SevCrit
)

// Signal sources for custom health rules: how a HealthSignal reads its
// series' retained window.
const (
	// SourceValue reads the current value (cumulative total for counters,
	// latest sample for gauges).
	SourceValue = obs.SourceValue
	// SourceDelta sums the change across the window.
	SourceDelta = obs.SourceDelta
	// SourceRate is the windowed change per second.
	SourceRate = obs.SourceRate
	// SourceQuantile reads the Q-quantile of the window's merged latency
	// distribution.
	SourceQuantile = obs.SourceQuantile
	// SourceAge reads nanoseconds since a monotonic-stamp gauge was set.
	SourceAge = obs.SourceAge
)

// Aggregators folding a signal's per-series readings when it matches more
// than one label set.
const (
	AggSum = obs.AggSum
	AggMax = obs.AggMax
	AggMin = obs.AggMin
)

// Trace event kinds.
const (
	// EvArrival is one base-stream tuple admitted.
	EvArrival = obs.EvArrival
	// EvEmit is one positive output-stream tuple.
	EvEmit = obs.EvEmit
	// EvRetract is one negative output-stream tuple.
	EvRetract = obs.EvRetract
	// EvWindowExpire is one window-generated negative tuple (NT strategy).
	EvWindowExpire = obs.EvWindowExpire
	// EvViewExpire is one lazy result-view expiration pass.
	EvViewExpire = obs.EvViewExpire
	// EvTableUpdate is one table mutation routed through the plan.
	EvTableUpdate = obs.EvTableUpdate
	// EvEagerPass is one eager maintenance pass that moved tuples.
	EvEagerPass = obs.EvEagerPass
	// EvLazyPass is one lazy maintenance pass that moved tuples.
	EvLazyPass = obs.EvLazyPass
	// EvDeltaSpan is one sampled per-delta span: the operator-by-operator
	// dwell breakdown of a traced arrival (see WithTraceSampling).
	EvDeltaSpan = obs.EvDeltaSpan
	// EvAlert is one health-rule alert transition forwarded through a
	// tracer (see TracerAlertSink).
	EvAlert = obs.EvAlert
)

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTracer builds a tracer over the given sinks with every event kind
// enabled; restrict with its Only method.
func NewTracer(sinks ...TraceSink) *Tracer { return obs.NewTracer(sinks...) }

// NewJSONLSink writes one JSON object per traced event to w (buffered;
// Flush forces partial output mid-run, Close flushes and finishes).
func NewJSONLSink(w io.Writer) *JSONLSink { return obs.NewJSONLSink(w) }

// NewRingSink keeps the most recent n events in memory. Overwritten events
// are counted; chain .ExposeDropped(reg) to surface that count as the
// upa_trace_dropped_total series instead of dropping silently.
func NewRingSink(n int) *RingSink { return obs.NewRingSink(n) }

// WithMetrics registers the compiled engine's instruments in reg and
// enables wall-clock Push latency sampling.
func WithMetrics(reg *MetricsRegistry) RegistryOption {
	return registryOption(func(c *compileCfg) { c.execCfg.Metrics = reg })
}

// WithTracer attaches a typed-event tracer to the compiled engine.
func WithTracer(t *Tracer) RegistryOption {
	return registryOption(func(c *compileCfg) { c.execCfg.Tracer = t })
}

// WithQueryLabel merges a {query: name} label into every metric series the
// compiled engine registers, so one registry (and one exposition endpoint)
// can carry several queries' series side by side.
func WithQueryLabel(name string) RegistryOption {
	return registryOption(func(c *compileCfg) {
		merged := obs.Labels{}
		for k, v := range c.execCfg.MetricLabels {
			merged[k] = v
		}
		merged["query"] = name
		c.execCfg.MetricLabels = merged
	})
}

// WithTraceSampling enables per-delta span tracing: one in every n admitted
// arrivals (or arrival runs, on the batch path) is traced through the plan,
// emitting one EvDeltaSpan event per operator it touches with that
// operator's dwell time. Requires a WithTracer tracer that wants
// EvDeltaSpan; n <= 0 disables sampling (the default). Keep n large (say,
// 1000+) on hot streams — sampling exists so spans stay within the <5%
// instrumentation overhead budget.
func WithTraceSampling(n int) RegistryOption {
	return registryOption(func(c *compileCfg) { c.execCfg.TraceSampleEvery = n })
}

// MetricsHandler serves reg over HTTP: /metrics (Prometheus text format),
// /metrics.json, /debug/vars (expvar), and /debug/pprof/. Extra pages (e.g.
// Engine.PlanPage) are mounted alongside and listed on the index.
func MetricsHandler(reg *MetricsRegistry, pages ...MetricsPage) http.Handler {
	return obs.Handler(reg, pages...)
}

// ServeMetrics binds addr (e.g. ":9090") and serves MetricsHandler in the
// background until the returned server is closed.
func ServeMetrics(addr string, reg *MetricsRegistry, pages ...MetricsPage) (*MetricsServer, error) {
	return obs.Serve(addr, reg, pages...)
}

// PlanPage returns a /debug/plan page for the exposition endpoint: the
// engine's EXPLAIN tree as text (or a Graphviz digraph with ?format=dot),
// annotated with live counters when ?analyze=1. The live mode reads only
// atomically-updated instruments — it never syncs or blocks the engine — so
// counters are a consistent-enough mid-run approximation, like /metrics.
func (e *Engine) PlanPage() MetricsPage {
	return MetricsPage{
		Path:  "/debug/plan",
		Title: "EXPLAIN of the running plan (?analyze=1, ?format=dot)",
		Handler: func(w http.ResponseWriter, r *http.Request) {
			analyze := r.URL.Query().Get("analyze") != ""
			t := e.explainTree(analyze)
			if r.URL.Query().Get("format") == "dot" {
				w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
				_ = t.WriteDOT(w)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = t.WriteText(w)
		},
	}
}

// Metrics returns the registry backing the engine's counters (the one
// given WithMetrics, or the engine's private registry). A sharded engine's
// shards share one registry, with per-shard series labeled shard="i".
func (e *Engine) Metrics() *MetricsRegistry {
	if e.sh != nil {
		return e.sh.Metrics()
	}
	return e.seq.Metrics()
}

// DeltaLatency snapshots the engine's ingest→emit delta-latency
// distributions, split by output polarity: pos covers emitted insertions,
// neg covers retractions (negative tuples). Latency is measured from the
// moment an arrival enters Push/PushBatch (for sharded engines: enters the
// shard buffer, so queue wait counts) to the moment its consequences are
// folded into the result view. Recording requires WithMetrics; without it
// both snapshots are zero. Sharded engines fold all shards' histograms.
func (e *Engine) DeltaLatency() (pos, neg LatencySnapshot) {
	if e.sh != nil {
		return e.sh.DeltaLatency()
	}
	return e.seq.DeltaLatency()
}

// PatternViolations returns the total number of update-pattern conformance
// violations the engine's per-edge monitor has recorded: retractions that
// exceeded their operator's declared pattern class (expirations on a
// monotonic edge, out-of-insertion-order expirations on a weakest/FIFO
// edge, premature expirations on a weak edge). Zero on a conformant run.
// Per-operator and per-kind breakdowns are in OpStats, EXPLAIN ANALYZE, the
// upa_pattern_violations_total series, and ConformancePage.
func (e *Engine) PatternViolations() int64 {
	if e.sh != nil {
		return e.sh.Violations()
	}
	return e.seq.Violations()
}

// NewLogAlertSink builds an alert sink that writes one human-readable line
// per transition to w.
func NewLogAlertSink(w io.Writer) AlertSink { return obs.NewLogAlertSink(w) }

// AlertFunc adapts a callback to the AlertSink interface.
func AlertFunc(fn func(AlertTransition)) AlertSink { return obs.AlertFunc(fn) }

// TracerAlertSink forwards alert transitions as EvAlert events through an
// existing tracer, reusing its JSONL/ring sinks.
func TracerAlertSink(t *Tracer) AlertSink { return obs.TracerAlertSink{T: t} }

// HealthConfig parameterizes WithHealth.
type HealthConfig struct {
	// Interval is the sampling cadence (default 1s). A negative interval
	// disables the background sampler: ticks happen only via
	// Health().Tick(), which tests and single-threaded drivers use for
	// determinism.
	Interval time.Duration
	// Capacity is the number of sample ticks each series retains
	// (default 600).
	Capacity int
	// SLO parameterizes the engine's built-in rules (latency p99 target,
	// checkpoint age, evaluation window).
	SLO HealthSLO
	// Rules are extra user rules evaluated alongside the built-ins.
	Rules []HealthRule
	// Sinks receive alert transitions.
	Sinks []AlertSink
}

// WithHealth attaches the self-monitoring subsystem to the compiled
// engine: a history sampler over the engine's registry (plus process-level
// build/uptime/runtime series), the engine's built-in health rules
// (pattern violations, premature expirations, shard backpressure, latency
// SLO, staleness lag, checkpoint age) plus any user rules, and an alert
// state machine per rule. Implies metrics: when no WithMetrics registry
// was given, a private one is created. The sampler goroutine starts at
// Compile and stops at Close.
func WithHealth(hc HealthConfig) RegistryOption {
	return registryOption(func(c *compileCfg) { c.health = &hc })
}

// attachHealth builds the health subsystem post-construction; called by
// Compile when WithHealth was given.
func (e *Engine) attachHealth(hc HealthConfig) {
	hcfg := obs.HistoryConfig{Capacity: hc.Capacity}
	if hc.Interval > 0 {
		hcfg.Interval = hc.Interval
	}
	hist := obs.NewHistory(e.Metrics(), hcfg)
	hist.BeforeSample(obs.RegisterProcessMetrics(e.Metrics()))
	var rules []HealthRule
	if e.sh != nil {
		rules = e.sh.HealthRules(hc.SLO)
	} else {
		rules = e.seq.HealthRules(hc.SLO)
	}
	rules = append(rules, hc.Rules...)
	h := obs.NewHealth(hist, rules...)
	for _, s := range hc.Sinks {
		h.AddSink(s)
	}
	e.health = h
	if hc.Interval >= 0 {
		h.Start()
	}
}

// Health returns the engine's health monitor, or nil unless compiled
// WithHealth. The monitor stays readable after Close (its sampler is
// stopped, its last state is retained).
func (e *Engine) Health() *HealthMonitor { return e.health }

// HealthPage returns the /debug/health page for the exposition endpoint:
// every rule's severity and signal value as JSON (or HTML with
// ?format=html), answering 503 when overall health is CRIT. Serves an
// "health monitoring disabled" error unless compiled WithHealth.
func (e *Engine) HealthPage() MetricsPage { return obs.HealthPage(e.health) }

// HistoryPage returns the /debug/history page: the sampler's retained
// per-series windows (?series=NAME&n=TICKS) as JSON. Serves an error
// unless compiled WithHealth.
func (e *Engine) HistoryPage() MetricsPage { return obs.HistoryPage(e.health.History()) }

// ConformancePage returns a /debug/conformance page for the exposition
// endpoint: one row per operator with its declared and observed
// update-pattern classes and violation counts by kind, plus the
// delta-latency percentiles — the conformance monitor's verdict at a
// glance. Reads are atomic; the page never blocks the engine.
func (e *Engine) ConformancePage() MetricsPage {
	return MetricsPage{
		Path:  "/debug/conformance",
		Title: "update-pattern conformance: declared vs observed per operator",
		Handler: func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = exec.WriteConformance(w, e.OpStats())
			pos, neg := e.DeltaLatency()
			fmt.Fprintf(w, "\ndelta latency (ns): pos n=%d p50=%d p95=%d p99=%d max=%d\n",
				pos.Count, pos.P50, pos.P95, pos.P99, pos.Max)
			fmt.Fprintf(w, "                    neg n=%d p50=%d p95=%d p99=%d max=%d\n",
				neg.Count, neg.P50, neg.P95, neg.P99, neg.Max)
		},
	}
}
