package repro

import (
	"io"
	"net/http"

	"repro/internal/obs"
)

// Observability re-exports: the metrics registry, typed event tracer, and
// exposition endpoint of internal/obs, attachable to a compiled query via
// WithMetrics and WithTracer. Both are off by default; a disabled engine
// pays one nil check per trace site and atomic counter adds only.
type (
	// MetricsRegistry holds named counters, gauges, and histograms; an
	// engine compiled WithMetrics registers its instruments here (see the
	// upa_* series in DESIGN.md) and enables per-Push latency sampling.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a registry.
	MetricsSnapshot = obs.Snapshot
	// Tracer fans typed engine events out to sinks.
	Tracer = obs.Tracer
	// TraceEvent is one typed engine event.
	TraceEvent = obs.Event
	// TraceEventKind classifies a TraceEvent.
	TraceEventKind = obs.EventKind
	// TraceSink receives every traced event.
	TraceSink = obs.Sink
	// RingSink keeps the last N events in memory.
	RingSink = obs.RingSink
	// MetricsServer is a running HTTP exposition endpoint.
	MetricsServer = obs.Server
	// MetricsPage is one extra endpoint mounted on the exposition handler,
	// e.g. Engine.PlanPage's /debug/plan.
	MetricsPage = obs.Page
)

// Trace event kinds.
const (
	// EvArrival is one base-stream tuple admitted.
	EvArrival = obs.EvArrival
	// EvEmit is one positive output-stream tuple.
	EvEmit = obs.EvEmit
	// EvRetract is one negative output-stream tuple.
	EvRetract = obs.EvRetract
	// EvWindowExpire is one window-generated negative tuple (NT strategy).
	EvWindowExpire = obs.EvWindowExpire
	// EvViewExpire is one lazy result-view expiration pass.
	EvViewExpire = obs.EvViewExpire
	// EvTableUpdate is one table mutation routed through the plan.
	EvTableUpdate = obs.EvTableUpdate
	// EvEagerPass is one eager maintenance pass that moved tuples.
	EvEagerPass = obs.EvEagerPass
	// EvLazyPass is one lazy maintenance pass that moved tuples.
	EvLazyPass = obs.EvLazyPass
)

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTracer builds a tracer over the given sinks with every event kind
// enabled; restrict with its Only method.
func NewTracer(sinks ...TraceSink) *Tracer { return obs.NewTracer(sinks...) }

// NewJSONLSink writes one JSON object per traced event to w (buffered;
// Close flushes).
func NewJSONLSink(w io.Writer) TraceSink { return obs.NewJSONLSink(w) }

// NewRingSink keeps the most recent n events in memory.
func NewRingSink(n int) *RingSink { return obs.NewRingSink(n) }

// WithMetrics registers the compiled engine's instruments in reg and
// enables wall-clock Push latency sampling.
func WithMetrics(reg *MetricsRegistry) Option {
	return func(c *compileCfg) { c.execCfg.Metrics = reg }
}

// WithTracer attaches a typed-event tracer to the compiled engine.
func WithTracer(t *Tracer) Option {
	return func(c *compileCfg) { c.execCfg.Tracer = t }
}

// MetricsHandler serves reg over HTTP: /metrics (Prometheus text format),
// /metrics.json, /debug/vars (expvar), and /debug/pprof/. Extra pages (e.g.
// Engine.PlanPage) are mounted alongside and listed on the index.
func MetricsHandler(reg *MetricsRegistry, pages ...MetricsPage) http.Handler {
	return obs.Handler(reg, pages...)
}

// ServeMetrics binds addr (e.g. ":9090") and serves MetricsHandler in the
// background until the returned server is closed.
func ServeMetrics(addr string, reg *MetricsRegistry, pages ...MetricsPage) (*MetricsServer, error) {
	return obs.Serve(addr, reg, pages...)
}

// PlanPage returns a /debug/plan page for the exposition endpoint: the
// engine's EXPLAIN tree as text (or a Graphviz digraph with ?format=dot),
// annotated with live counters when ?analyze=1. The live mode reads only
// atomically-updated instruments — it never syncs or blocks the engine — so
// counters are a consistent-enough mid-run approximation, like /metrics.
func (e *Engine) PlanPage() MetricsPage {
	return MetricsPage{
		Path:  "/debug/plan",
		Title: "EXPLAIN of the running plan (?analyze=1, ?format=dot)",
		Handler: func(w http.ResponseWriter, r *http.Request) {
			analyze := r.URL.Query().Get("analyze") != ""
			t := e.explainTree(analyze)
			if r.URL.Query().Get("format") == "dot" {
				w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
				_ = t.WriteDOT(w)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = t.WriteText(w)
		},
	}
}

// Metrics returns the registry backing the engine's counters (the one
// given WithMetrics, or the engine's private registry). A sharded engine's
// shards share one registry, with per-shard series labeled shard="i".
func (e *Engine) Metrics() *MetricsRegistry {
	if e.sh != nil {
		return e.sh.Metrics()
	}
	return e.seq.Metrics()
}
